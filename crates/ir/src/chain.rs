//! The MBCI operator chain — the unit of fusion MCFuser tunes.
//!
//! A chain is a straight line of matrix multiplications where each
//! operator's output feeds the next operator's left-hand side, with
//! optional memory-intensive epilogues (softmax — plain or masked —
//! ReLU, GELU, scaling) and per-stage bias adds applied in between.
//! The paper's running examples are:
//!
//! * the GEMM chain `C = A×B, E = C×D` (§III, Fig. 3), and
//! * self-attention `E = softmax(Q Kᵀ / √d) V` (§VI-B2),
//!
//! both instances of the same shape-generic structure:
//!
//! ```text
//! T₀ = A · W₀           A: [batch, m, d₀]   W₀: [batch, d₀, d₁]
//! T₁ = ε₀(T₀) · W₁      W₁: [batch, d₁, d₂]
//! ...
//! out = ε_{L-1}(T_{L-1})        out: [batch, m, d_L]
//! ```
//!
//! The cross-tile loop axes of a chain are `m` plus one axis per `dᵢ`
//! (named `k, n, h, p, q, …` to match the paper) and the batch.

use serde::{Deserialize, Serialize};

use mcfuser_sim::{DType, DeviceSpec, HostTensor};

/// A memory-intensive epilogue fused after a compute block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Epilogue {
    /// Identity.
    #[default]
    None,
    /// Element-wise `max(x, 0)`.
    Relu,
    /// Element-wise GELU (tanh approximation).
    Gelu,
    /// Element-wise multiplication by a constant.
    Scale(f32),
    /// Row-wise softmax over the output's last dimension with a
    /// pre-softmax scale (e.g. `1/√d_k` in attention).
    Softmax {
        /// Pre-softmax multiplier.
        scale: f32,
    },
    /// Row-wise softmax over `scale·(x + mask)`, where `mask` is an
    /// auxiliary `[batch, m, d_{i+1}]` chain input (additive attention
    /// mask; a causal mask is the special case of a lower-triangular
    /// one). Matches the graph pattern `Softmax{scale}(Add(scores,
    /// mask))`; for the usual `0/−large` masks this coincides with the
    /// scale-then-mask convention.
    MaskedSoftmax {
        /// Pre-softmax multiplier (applied after the mask is added).
        scale: f32,
    },
}

impl Epilogue {
    /// Whether this epilogue requires full rows before producing output
    /// (forces streaming/online handling when the row dim is tiled).
    pub fn is_rowwise(&self) -> bool {
        matches!(
            self,
            Epilogue::Softmax { .. } | Epilogue::MaskedSoftmax { .. }
        )
    }

    /// Whether this epilogue consumes an auxiliary chain input (the
    /// attention mask). Biases are tracked separately per stage on
    /// [`ChainSpec::biases`].
    pub fn needs_mask(&self) -> bool {
        matches!(self, Epilogue::MaskedSoftmax { .. })
    }
}

/// One auxiliary data input of a chain beyond `A` and the weights:
/// a per-stage bias vector, an attention mask, or a stitched
/// prologue/epilogue operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuxInput {
    /// Bias vector `[d_{stage+1}]`, added to stage `stage`'s output
    /// before its elementwise epilogue.
    Bias {
        /// The compute block this bias belongs to.
        stage: usize,
    },
    /// Additive mask `[batch, m, d_{stage+1}]` consumed by stage
    /// `stage`'s [`Epilogue::MaskedSoftmax`].
    Mask {
        /// The compute block this mask belongs to.
        stage: usize,
    },
    /// Raw (f32) residual `[batch, m, d₀]` added to the raw chain input
    /// before the [`PrologueSpec`] normalization.
    PrologueResidual,
    /// Prologue LayerNorm scale `[d₀]` (stored in f32).
    PrologueGamma,
    /// Prologue LayerNorm shift `[d₀]` (stored in f32).
    PrologueBeta,
    /// Raw (f32) residual `[batch, m, d_L]` added to the quantized chain
    /// output by an [`EpilogueStitch`] with
    /// [`ResidualSource::External`]. A [`ResidualSource::PrologueOut`]
    /// residual is recomputed in-kernel from the prologue operands and
    /// needs no extra input.
    TailResidual,
    /// Tail LayerNorm scale `[d_L]` (stored in f32).
    TailGamma,
    /// Tail LayerNorm shift `[d_L]` (stored in f32).
    TailBeta,
}

/// A fused prologue stitched before the chain's first matmul: the chain
/// input `A` arrives *raw* (pre-normalization, f32) and the kernel
/// applies `LayerNorm((A + residual?))` per row of `d₀` before
/// quantizing to the chain dtype and feeding the first GEMM. This folds
/// the `residual Add → LayerNorm → Linear` glue of a transformer layer
/// into the chain kernel, eliminating one round trip of the activation
/// through global memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrologueSpec {
    /// Whether a raw residual tensor ([`AuxInput::PrologueResidual`]) is
    /// added to `A` before normalization.
    pub residual: bool,
    /// Whether the normalization has affine scale/shift weights
    /// ([`AuxInput::PrologueGamma`]/[`AuxInput::PrologueBeta`]).
    /// Stitched prologues require affine weights: zero-padded strips
    /// make out-of-range tile columns exactly zero, matching the
    /// zero-padded loads of the unstitched layout bit-for-bit.
    pub affine: bool,
    /// The raw `A` operand is *stored* at the chain's element precision:
    /// its producer is another fused chain without a tail stitch, which
    /// quantizes its output on store. Values are unaffected (loads pass
    /// through the f32 tile), but global traffic moves half the bytes.
    /// `false` for operands crossing the unfused boundary (graph inputs,
    /// reference-step values, stitched-tail outputs), which live in f32.
    pub a_half: bool,
    /// LayerNorm epsilon.
    pub eps: f32,
}

/// Where a stitched tail residual comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResidualSource {
    /// An [`AuxInput::TailResidual`] tensor read from global memory.
    External,
    /// The raw prologue output (e.g. `ln1` in a BERT FFN block), which
    /// the kernel recomputes element-wise from the prologue operands
    /// using whole-row statistics. Requires `d₀ == d_L` and a
    /// [`ChainSpec::prologue`].
    PrologueOut,
}

/// A fused epilogue stitched after the chain's last matmul: the
/// accumulator is quantized to the chain dtype (bit-matching the store
/// the unstitched layout would have performed), a raw residual is added,
/// an optional full-row LayerNorm is applied, and the result is stored
/// *raw* (f32) — exactly the value the downstream graph would have seen
/// from the unstitched `Add (→ LayerNorm)` reference steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpilogueStitch {
    /// Source of the residual added to the quantized chain output.
    pub residual: ResidualSource,
    /// Whether a trailing full-row LayerNorm over `d_L` is fused.
    pub layer_norm: bool,
    /// Whether that LayerNorm has affine weights
    /// ([`AuxInput::TailGamma`]/[`AuxInput::TailBeta`]).
    pub affine: bool,
    /// LayerNorm epsilon.
    pub eps: f32,
}

/// A chain of `L = dims.len() - 1` batched matmuls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// Human-readable name (e.g. `"G4"`, `"S2"`).
    pub name: String,
    /// Batch size (product of batch and head count for attention).
    pub batch: u64,
    /// Shared row dimension `m`.
    pub m: u64,
    /// `d₀ … d_L`: the reduction dim of op 0, the intermediate dims, and
    /// the output column dim. For the paper's 2-GEMM chain this is
    /// `[K, N, H]`.
    pub dims: Vec<u64>,
    /// Epilogue applied after op `i` (length `L`). The last entry is
    /// applied before the final store.
    pub epilogues: Vec<Epilogue>,
    /// Whether op `i` adds a bias vector `[d_{i+1}]` to its output
    /// before `epilogues[i]` (length `L`; all-false for the paper's
    /// unbiased chains).
    pub biases: Vec<bool>,
    /// Storage precision of all tensors.
    pub dtype: DType,
    /// Stitched normalization prologue before the first matmul (`None`
    /// for plain chains).
    pub prologue: Option<PrologueSpec>,
    /// Stitched residual/LayerNorm epilogue after the last matmul
    /// (`None` for plain chains).
    pub stitch_epilogue: Option<EpilogueStitch>,
}

/// Canonical axis names used in tiling expressions: `m`, then `k, n, h,
/// p, q, r, s…` for `d₀, d₁, …`.
pub const AXIS_NAMES: [&str; 8] = ["k", "n", "h", "p", "q", "r", "s", "t"];

impl ChainSpec {
    /// A 2-GEMM chain `C = A×B; E = C×D` with the paper's `(M, N, K, H)`
    /// naming (Table II).
    pub fn gemm_chain(name: impl Into<String>, batch: u64, m: u64, n: u64, k: u64, h: u64) -> Self {
        ChainSpec {
            name: name.into(),
            batch,
            m,
            dims: vec![k, n, h],
            epilogues: vec![Epilogue::None, Epilogue::None],
            biases: vec![false, false],
            dtype: DType::F16,
            prologue: None,
            stitch_epilogue: None,
        }
    }

    /// An arbitrary-length chain `T₀ = A·W₀; Tᵢ = εᵢ₋₁(Tᵢ₋₁)·Wᵢ` with
    /// per-stage epilogues (no biases). `dims` is `d₀ … d_L`, so the
    /// chain has `dims.len() - 1` matmuls and `epilogues` must have
    /// that many entries.
    pub fn chain(
        name: impl Into<String>,
        batch: u64,
        m: u64,
        dims: Vec<u64>,
        epilogues: Vec<Epilogue>,
    ) -> Self {
        assert!(dims.len() >= 2, "a chain needs at least one matmul");
        assert_eq!(
            epilogues.len(),
            dims.len() - 1,
            "one epilogue per compute block"
        );
        let ops = dims.len() - 1;
        ChainSpec {
            name: name.into(),
            batch,
            m,
            dims,
            epilogues,
            biases: vec![false; ops],
            dtype: DType::F16,
            prologue: None,
            stitch_epilogue: None,
        }
    }

    /// A self-attention module `E = softmax(Q Kᵀ/√K) V` with `heads`
    /// folded into the batch (Table III).
    pub fn attention(name: impl Into<String>, heads: u64, m: u64, n: u64, k: u64, h: u64) -> Self {
        ChainSpec {
            name: name.into(),
            batch: heads,
            m,
            dims: vec![k, n, h],
            epilogues: vec![
                Epilogue::Softmax {
                    scale: 1.0 / (k as f64).sqrt() as f32,
                },
                Epilogue::None,
            ],
            biases: vec![false, false],
            dtype: DType::F16,
            prologue: None,
            stitch_epilogue: None,
        }
    }

    /// Self-attention with an additive `[heads, m, n]` mask folded into
    /// the softmax: `E = softmax((Q Kᵀ + M)/√K) V` — the mask is added
    /// to the raw scores *before* the pre-softmax scale, matching the
    /// graph pattern `Softmax{scale}(Add(scores, mask))`. For the usual
    /// `0/−large` masks this coincides with the scale-then-mask
    /// convention; relative-position-bias-style soft masks should be
    /// pre-multiplied by `√K` if the other convention is intended.
    pub fn masked_attention(
        name: impl Into<String>,
        heads: u64,
        m: u64,
        n: u64,
        k: u64,
        h: u64,
    ) -> Self {
        let mut c = Self::attention(name, heads, m, n, k, h);
        c.epilogues[0] = Epilogue::MaskedSoftmax {
            scale: 1.0 / (k as f64).sqrt() as f32,
        };
        c
    }

    /// A single matmul `C[m,n] = A[m,k]·B[k,n]` (used by Fig. 2 and by
    /// per-operator baselines).
    pub fn single_matmul(name: impl Into<String>, batch: u64, m: u64, n: u64, k: u64) -> Self {
        ChainSpec {
            name: name.into(),
            batch,
            m,
            dims: vec![k, n],
            epilogues: vec![Epilogue::None],
            biases: vec![false],
            dtype: DType::F16,
            prologue: None,
            stitch_epilogue: None,
        }
    }

    /// Number of compute blocks (matmuls).
    pub fn num_ops(&self) -> usize {
        self.dims.len() - 1
    }

    /// Number of cross-tile loop axes excluding the batch: `m` + one per
    /// `dᵢ`.
    pub fn num_axes(&self) -> usize {
        1 + self.dims.len()
    }

    /// Extent of axis `i` (axis 0 = `m`, axis `1+i` = `dims[i]`).
    pub fn axis_extent(&self, axis: usize) -> u64 {
        if axis == 0 {
            self.m
        } else {
            self.dims[axis - 1]
        }
    }

    /// Display name of axis `i`.
    pub fn axis_name(&self, axis: usize) -> &'static str {
        if axis == 0 {
            "m"
        } else {
            AXIS_NAMES[axis - 1]
        }
    }

    /// Auxiliary data inputs beyond `A` and the weights, in canonical
    /// order: for each stage `i` (ascending), its bias (if any) then its
    /// mask (if any); then the stitched prologue operands (residual,
    /// gamma, beta); then the stitched tail operands (residual, gamma,
    /// beta).
    pub fn aux_inputs(&self) -> Vec<AuxInput> {
        let mut v = Vec::new();
        for i in 0..self.num_ops() {
            if self.biases.get(i).copied().unwrap_or(false) {
                v.push(AuxInput::Bias { stage: i });
            }
            if self.epilogues[i].needs_mask() {
                v.push(AuxInput::Mask { stage: i });
            }
        }
        if let Some(p) = &self.prologue {
            if p.residual {
                v.push(AuxInput::PrologueResidual);
            }
            if p.affine {
                v.push(AuxInput::PrologueGamma);
                v.push(AuxInput::PrologueBeta);
            }
        }
        if let Some(e) = &self.stitch_epilogue {
            if e.residual == ResidualSource::External {
                v.push(AuxInput::TailResidual);
            }
            if e.layer_norm && e.affine {
                v.push(AuxInput::TailGamma);
                v.push(AuxInput::TailBeta);
            }
        }
        v
    }

    /// Shape of one auxiliary input.
    pub fn aux_shape(&self, aux: AuxInput) -> Vec<u64> {
        match aux {
            AuxInput::Bias { stage } => vec![self.dims[stage + 1]],
            AuxInput::Mask { stage } => vec![self.batch, self.m, self.dims[stage + 1]],
            AuxInput::PrologueResidual => vec![self.batch, self.m, self.dims[0]],
            AuxInput::PrologueGamma | AuxInput::PrologueBeta => vec![self.dims[0]],
            AuxInput::TailResidual => vec![self.batch, self.m, *self.dims.last().unwrap()],
            AuxInput::TailGamma | AuxInput::TailBeta => vec![*self.dims.last().unwrap()],
        }
    }

    /// Total number of data inputs: `A`, `L` weights, plus auxiliaries.
    pub fn num_inputs(&self) -> usize {
        self.num_ops() + 1 + self.aux_inputs().len()
    }

    /// The input tensor shapes: `A`, each weight `Wᵢ`, then the
    /// auxiliary inputs (biases/masks) in [`ChainSpec::aux_inputs`]
    /// order.
    pub fn input_shapes(&self) -> Vec<Vec<u64>> {
        let mut v = Vec::with_capacity(self.num_inputs());
        v.push(vec![self.batch, self.m, self.dims[0]]);
        for i in 0..self.num_ops() {
            v.push(vec![self.batch, self.dims[i], self.dims[i + 1]]);
        }
        for aux in self.aux_inputs() {
            v.push(self.aux_shape(aux));
        }
        v
    }

    /// Output shape `[batch, m, d_L]`.
    pub fn output_shape(&self) -> Vec<u64> {
        vec![self.batch, self.m, *self.dims.last().unwrap()]
    }

    /// Shape of intermediate `Tᵢ` = `[batch, m, d_{i+1}]`.
    pub fn intermediate_shape(&self, i: usize) -> Vec<u64> {
        vec![self.batch, self.m, self.dims[i + 1]]
    }

    /// Total floating-point operations of the matmuls.
    pub fn flops(&self) -> f64 {
        let mut f = 0.0;
        for i in 0..self.num_ops() {
            f += 2.0 * (self.batch * self.m * self.dims[i] * self.dims[i + 1]) as f64;
        }
        f
    }

    /// Compulsory global traffic of a perfectly fused kernel: inputs once
    /// in, output once out. Stitched operands (the raw chain input, the
    /// prologue/tail residuals and LayerNorm weights, and the stitched
    /// output) live in f32 regardless of the chain dtype.
    pub fn min_traffic_bytes(&self) -> f64 {
        let e = self.dtype.size_bytes() as f64;
        let raw = 4.0;
        let a_elems = (self.batch * self.m * self.dims[0]) as f64;
        let mut b = a_elems * if self.prologue.is_some() { raw } else { e };
        for i in 0..self.num_ops() {
            b += (self.batch * self.dims[i] * self.dims[i + 1]) as f64 * e;
        }
        for aux in self.aux_inputs() {
            let elems = self.aux_shape(aux).iter().product::<u64>() as f64;
            let sz = match aux {
                AuxInput::Bias { .. } | AuxInput::Mask { .. } => e,
                _ => raw,
            };
            b += elems * sz;
        }
        let out_elems = self.output_shape().iter().product::<u64>() as f64;
        b += out_elems
            * if self.stitch_epilogue.is_some() {
                raw
            } else {
                e
            };
        b
    }

    /// Additional traffic an unfused pipeline pays: every intermediate
    /// written then re-read (plus extra passes for row-wise epilogues).
    pub fn unfused_extra_traffic_bytes(&self) -> f64 {
        let e = self.dtype.size_bytes() as f64;
        let mut b = 0.0;
        for i in 0..self.num_ops().saturating_sub(1) {
            let elems = self.intermediate_shape(i).iter().product::<u64>() as f64;
            // write + read back
            b += 2.0 * elems * e;
            if self.epilogues[i].is_rowwise() {
                // softmax: extra read/write passes over the scores
                b += 3.0 * elems * e;
            }
        }
        b
    }

    /// Arithmetic intensity of the *fused* kernel (FLOP per byte): inputs
    /// once in, output once out. Fusion exists precisely to lift this
    /// above the per-operator intensity.
    pub fn operational_intensity(&self) -> f64 {
        self.flops() / self.min_traffic_bytes()
    }

    /// Arithmetic intensity of operator `i` executed standalone —
    /// the paper's φ = 2MNK/((MK + KN + MN)·esz) for one GEMM (§II-A).
    pub fn op_intensity(&self, i: usize) -> f64 {
        let m = self.m as f64;
        let k = self.dims[i] as f64;
        let n = self.dims[i + 1] as f64;
        let esz = self.dtype.size_bytes() as f64;
        2.0 * m * n * k / ((m * k + k * n + m * n) * esz)
    }

    /// Arithmetic intensity of operator `i` *inside the stitched kernel*:
    /// the prologue makes the first op read its `A` operand (and the
    /// optional residual) raw in f32, twice — once for the row-statistics
    /// pass, once for the normalize-and-load pass — while the tail makes
    /// the last op store raw f32 (plus an external residual read). The
    /// element-wise recompute reads of a [`ResidualSource::PrologueOut`]
    /// tail are streaming loads overlapped with the store and are charged
    /// by the timing model, not here.
    pub fn stitched_op_intensity(&self, i: usize) -> f64 {
        const F32: f64 = 4.0;
        let m = self.m as f64;
        let k = self.dims[i] as f64;
        let n = self.dims[i + 1] as f64;
        let esz = self.dtype.size_bytes() as f64;
        let mut a_term = m * k * esz;
        let w_term = k * n * esz;
        let mut o_term = m * n * esz;
        if i == 0 {
            if let Some(p) = &self.prologue {
                let tensors = if p.residual { 2.0 } else { 1.0 };
                a_term = m * k * F32 * 2.0 * tensors;
            }
        }
        if i + 1 == self.num_ops() {
            if let Some(e) = &self.stitch_epilogue {
                o_term = m * n * F32;
                if e.residual == ResidualSource::External {
                    o_term += m * n * F32;
                }
            }
        }
        2.0 * m * n * k / (a_term + w_term + o_term)
    }

    /// Whether this chain carries a stitched prologue or epilogue.
    pub fn is_stitched(&self) -> bool {
        self.prologue.is_some() || self.stitch_epilogue.is_some()
    }

    /// The same chain with the stitched prologue/epilogue stripped — the
    /// baseline the stitched kernel must match bit-for-bit once the
    /// demoted glue ops are applied outside the kernel.
    pub fn unstitched(&self) -> ChainSpec {
        let mut c = self.clone();
        c.prologue = None;
        c.stitch_epilogue = None;
        c
    }

    /// The paper's MBCI test (§II-A): each compute-intensive operator of
    /// the chain, run standalone, sits *below* the device ridge point
    /// `P/W` — i.e. every operator is memory bound, so fusing the chain
    /// (which raises arithmetic intensity) pays off.
    pub fn is_memory_bound(&self, dev: &DeviceSpec) -> bool {
        let ridge = dev.ridge_flops_per_byte(self.dtype);
        (0..self.num_ops()).all(|i| self.op_intensity(i) < ridge)
    }

    /// True if any epilogue is a row-wise softmax (attention-like chains).
    pub fn has_softmax(&self) -> bool {
        self.epilogues.iter().any(Epilogue::is_rowwise)
    }

    /// Generate deterministic random inputs (values in `[-1, 1]`).
    pub fn random_inputs(&self, seed: u64) -> Vec<HostTensor> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.input_shapes()
            .iter()
            .map(|s| {
                let len = s.iter().product::<u64>() as usize;
                HostTensor::from_vec(s, (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            })
            .collect()
    }

    /// Index of an auxiliary input within [`ChainSpec::input_shapes`]
    /// (auxiliaries follow `A` and the `L` weights).
    pub fn aux_index(&self, aux: AuxInput) -> Option<usize> {
        self.aux_inputs()
            .iter()
            .position(|a| *a == aux)
            .map(|p| self.num_ops() + 1 + p)
    }

    /// CPU reference execution — the correctness oracle for fused kernels.
    ///
    /// Computes every matmul naively in f32 with the declared biases and
    /// epilogues. Stitched chains mirror the kernel's quantization points
    /// exactly: the prologue output is rounded to the chain dtype before
    /// entering the first GEMM (as a `load` from an f16 buffer would
    /// round it), and the last accumulator is rounded before the tail
    /// residual add (as the unstitched `store` would round it) — so the
    /// stitched result is bit-identical to running the unstitched chain
    /// plus reference glue ops.
    pub fn reference(&self, inputs: &[HostTensor]) -> HostTensor {
        assert_eq!(inputs.len(), self.num_inputs());
        let b = self.batch as usize;
        let m = self.m as usize;
        let mut prologue_raw: Option<Vec<f32>> = None;
        let mut cur: Vec<f32> = inputs[0].data.clone(); // [b, m, d0]
        if let Some(p) = self.prologue {
            let d0 = self.dims[0] as usize;
            if p.residual {
                let res = &inputs[self.aux_index(AuxInput::PrologueResidual).unwrap()].data;
                for (v, r) in cur.iter_mut().zip(res) {
                    *v += *r;
                }
            }
            let gamma = p
                .affine
                .then(|| &inputs[self.aux_index(AuxInput::PrologueGamma).unwrap()].data[..]);
            let beta = p
                .affine
                .then(|| &inputs[self.aux_index(AuxInput::PrologueBeta).unwrap()].data[..]);
            layer_norm_rows(&mut cur, b * m, d0, p.eps, gamma, beta);
            prologue_raw = Some(cur.clone());
            for v in cur.iter_mut() {
                *v = self.dtype.quantize(*v);
            }
        }
        let mut cur_cols = self.dims[0] as usize;
        for op in 0..self.num_ops() {
            let kd = self.dims[op] as usize;
            let nd = self.dims[op + 1] as usize;
            debug_assert_eq!(cur_cols, kd);
            let w = &inputs[op + 1].data; // [b, kd, nd]
            let mut out = vec![0.0f32; b * m * nd];
            for bb in 0..b {
                let cur_base = bb * m * kd;
                let w_base = bb * kd * nd;
                let out_base = bb * m * nd;
                for i in 0..m {
                    for kk in 0..kd {
                        let av = cur[cur_base + i * kd + kk];
                        if av == 0.0 {
                            continue;
                        }
                        let wrow = &w[w_base + kk * nd..w_base + (kk + 1) * nd];
                        let orow = &mut out[out_base + i * nd..out_base + (i + 1) * nd];
                        for j in 0..nd {
                            orow[j] += av * wrow[j];
                        }
                    }
                }
            }
            if self.biases.get(op).copied().unwrap_or(false) {
                let bias = &inputs[self.aux_index(AuxInput::Bias { stage: op }).unwrap()].data;
                for (r, v) in out.iter_mut().enumerate() {
                    *v += bias[r % nd];
                }
            }
            if let Epilogue::MaskedSoftmax { scale } = self.epilogues[op] {
                let mask = &inputs[self.aux_index(AuxInput::Mask { stage: op }).unwrap()].data;
                apply_masked_softmax(&mut out, mask, b * m, nd, scale);
            } else {
                apply_epilogue(self.epilogues[op], &mut out, b * m, nd);
            }
            cur = out;
            cur_cols = nd;
        }
        if let Some(e) = self.stitch_epilogue {
            let dl = *self.dims.last().unwrap() as usize;
            // The unstitched layout would store the chain output in the
            // chain dtype; round before the residual add so the stitched
            // value matches it bit-for-bit.
            for v in cur.iter_mut() {
                *v = self.dtype.quantize(*v);
            }
            match e.residual {
                ResidualSource::PrologueOut => {
                    let raw = prologue_raw
                        .as_ref()
                        .expect("PrologueOut tail requires a stitched prologue");
                    for (v, r) in cur.iter_mut().zip(raw) {
                        *v += *r;
                    }
                }
                ResidualSource::External => {
                    let res = &inputs[self.aux_index(AuxInput::TailResidual).unwrap()].data;
                    for (v, r) in cur.iter_mut().zip(res) {
                        *v += *r;
                    }
                }
            }
            if e.layer_norm {
                let gamma = e
                    .affine
                    .then(|| &inputs[self.aux_index(AuxInput::TailGamma).unwrap()].data[..]);
                let beta = e
                    .affine
                    .then(|| &inputs[self.aux_index(AuxInput::TailBeta).unwrap()].data[..]);
                layer_norm_rows(&mut cur, b * m, dl, e.eps, gamma, beta);
            }
        }
        HostTensor::from_vec(&self.output_shape(), cur)
    }
}

/// Row-wise LayerNorm over a `rows × cols` row-major matrix, matching
/// the graph reference evaluator's operation order exactly (sequential
/// sums; `n = (v - mean)·inv`, then `n *= γ`, then `n += β`) so that
/// chain-level and graph-level references agree bit-for-bit.
pub fn layer_norm_rows(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    eps: f32,
    gamma: Option<&[f32]>,
    beta: Option<&[f32]>,
) {
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (c, v) in row.iter_mut().enumerate() {
            let mut n = (*v - mean) * inv;
            if let Some(g) = gamma {
                n *= g[c];
            }
            if let Some(b) = beta {
                n += b[c];
            }
            *v = n;
        }
    }
}

/// Apply an epilogue in place over a `rows × cols` row-major matrix.
/// [`Epilogue::MaskedSoftmax`] is applied as a plain softmax here (the
/// mask is an auxiliary tensor this signature cannot carry — use
/// [`apply_masked_softmax`] when the mask is at hand).
pub fn apply_epilogue(e: Epilogue, data: &mut [f32], rows: usize, cols: usize) {
    match e {
        Epilogue::None => {}
        Epilogue::Relu => {
            for v in data.iter_mut() {
                *v = v.max(0.0);
            }
        }
        Epilogue::Gelu => {
            for v in data.iter_mut() {
                *v = crate::reference::gelu(*v);
            }
        }
        Epilogue::Scale(f) => {
            for v in data.iter_mut() {
                *v *= f;
            }
        }
        Epilogue::Softmax { scale } | Epilogue::MaskedSoftmax { scale } => {
            for r in 0..rows {
                let row = &mut data[r * cols..(r + 1) * cols];
                let mx = row.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(scale * v));
                let mut sum = 0.0f32;
                for v in row.iter_mut() {
                    *v = (scale * *v - mx).exp();
                    sum += *v;
                }
                if sum > 0.0 {
                    for v in row.iter_mut() {
                        *v /= sum;
                    }
                }
            }
        }
    }
}

/// Row-wise softmax of `scale·(x + mask)` over a `rows × cols`
/// row-major matrix (`mask` has the same layout).
pub fn apply_masked_softmax(data: &mut [f32], mask: &[f32], rows: usize, cols: usize, scale: f32) {
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let mrow = &mask[r * cols..(r + 1) * cols];
        let mut mx = f32::NEG_INFINITY;
        for (v, mk) in row.iter().zip(mrow) {
            mx = mx.max(scale * (v + mk));
        }
        let mut sum = 0.0f32;
        for (v, mk) in row.iter_mut().zip(mrow) {
            *v = (scale * (*v + mk) - mx).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// A finite additive causal mask `[heads, m, n]`: `0` on and below the
/// diagonal, a large negative constant above it (finite so padded tiles
/// never produce `inf − inf` NaNs).
pub fn causal_mask(heads: u64, m: u64, n: u64) -> HostTensor {
    const NEG: f32 = -1.0e9;
    let (hh, mm, nn) = (heads as usize, m as usize, n as usize);
    let mut data = vec![0.0f32; hh * mm * nn];
    for h in 0..hh {
        for r in 0..mm {
            for c in 0..nn {
                if c > r {
                    data[h * mm * nn + r * nn + c] = NEG;
                }
            }
        }
    }
    HostTensor::from_vec(&[heads, m, n], data)
}

/// A decode-step mask `[heads, 1, n]` for a query at position `pos`
/// attending over a KV panel of bucket capacity `n`: `0` for columns
/// `0..=pos`, the same large negative constant as [`causal_mask`] for
/// columns beyond. Scaled and exponentiated, the masked columns
/// underflow to an exact `0.0` probability, so outputs are invariant to
/// the bucket padding.
pub fn decode_mask(heads: u64, n: u64, pos: u64) -> HostTensor {
    const NEG: f32 = -1.0e9;
    let (hh, nn, p) = (heads as usize, n as usize, pos as usize);
    let mut data = vec![0.0f32; hh * nn];
    for h in 0..hh {
        for c in (p + 1)..nn {
            data[h * nn + c] = NEG;
        }
    }
    HostTensor::from_vec(&[heads, 1, n], data)
}

/// A one-hot scatter column `[batch, n, 1]` selecting row `pos`: used as
/// the left operand of a batched matmul against a `[batch, 1, d]` new
/// KV row so `cache + onehot×row` appends the row at `pos` without a
/// dedicated scatter op.
pub fn scatter_onehot(batch: u64, n: u64, pos: u64) -> HostTensor {
    let (bb, nn, p) = (batch as usize, n as usize, pos as usize);
    let mut data = vec![0.0f32; bb * nn];
    for b in 0..bb {
        data[b * nn + p] = 1.0;
    }
    HostTensor::from_vec(&[batch, n, 1], data)
}

impl std::fmt::Display for ChainSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: batch={} m={} dims={:?}",
            self.name, self.batch, self.m, self.dims
        )?;
        if self.has_softmax() {
            write!(f, " (softmax)")?;
        }
        if self.prologue.is_some() {
            write!(f, " (+prologue)")?;
        }
        if self.stitch_epilogue.is_some() {
            write!(f, " (+epilogue)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_chain_shapes() {
        let c = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 128);
        assert_eq!(c.num_ops(), 2);
        assert_eq!(c.num_axes(), 4);
        assert_eq!(
            c.input_shapes(),
            vec![vec![1, 512, 64], vec![1, 64, 256], vec![1, 256, 128],]
        );
        assert_eq!(c.output_shape(), vec![1, 512, 128]);
        assert_eq!(c.axis_name(0), "m");
        assert_eq!(c.axis_name(1), "k");
        assert_eq!(c.axis_name(2), "n");
        assert_eq!(c.axis_name(3), "h");
    }

    #[test]
    fn flops_matches_hand_count() {
        let c = ChainSpec::gemm_chain("g", 2, 8, 4, 3, 5);
        // 2 * (2*8*3*4 + 2*8*4*5) = 2*(192 + 320)... careful:
        // op0: 2*B*M*K*N = 2*2*8*3*4 = 384; op1: 2*2*8*4*5 = 640.
        assert_eq!(c.flops(), 384.0 + 640.0);
    }

    #[test]
    fn mbci_classification_depends_on_k() {
        let dev = DeviceSpec::a100();
        // Fat reduction dims: compute bound.
        let fat = ChainSpec::gemm_chain("fat", 1, 4096, 4096, 4096, 4096);
        assert!(!fat.is_memory_bound(&dev));
        // Skinny reduction dims (the paper's MBCI regime): memory bound.
        let skinny = ChainSpec::gemm_chain("skinny", 1, 512, 256, 64, 64);
        assert!(skinny.is_memory_bound(&dev));
    }

    #[test]
    fn reference_matches_manual_2gemm() {
        let c = ChainSpec::gemm_chain("g", 1, 4, 3, 2, 5);
        let inputs = c.random_inputs(7);
        let out = c.reference(&inputs);
        // Manual: C = A×B (4x3), E = C×D (4x5).
        let (a, bm, d) = (&inputs[0], &inputs[1], &inputs[2]);
        let mut cmat = [0.0f32; 4 * 3];
        for i in 0..4 {
            for j in 0..3 {
                for kk in 0..2 {
                    cmat[i * 3 + j] += a.data[i * 2 + kk] * bm.data[kk * 3 + j];
                }
            }
        }
        let mut e = vec![0.0f32; 4 * 5];
        for i in 0..4 {
            for j in 0..5 {
                for kk in 0..3 {
                    e[i * 5 + j] += cmat[i * 3 + kk] * d.data[kk * 5 + j];
                }
            }
        }
        for (g, want) in out.data.iter().zip(&e) {
            assert!((g - want).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_after_reference() {
        let c = ChainSpec::attention("s", 2, 8, 8, 4, 4);
        let inputs = c.random_inputs(3);
        // Check the epilogue by applying it to a raw matrix.
        let mut scores = vec![1.0f32, 2.0, 3.0, 4.0];
        apply_epilogue(Epilogue::Softmax { scale: 1.0 }, &mut scores, 1, 4);
        let s: f32 = scores.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        // And that attention output is finite and bounded by value range.
        let out = c.reference(&inputs);
        assert!(out.data.iter().all(|v| v.is_finite()));
        assert!(out.data.iter().all(|v| v.abs() <= 1.0 + 1e-4));
    }

    #[test]
    fn unfused_traffic_exceeds_fused() {
        let c = ChainSpec::attention("s", 8, 512, 512, 64, 64);
        assert!(c.unfused_extra_traffic_bytes() > 0.0);
        let unfused = c.min_traffic_bytes() + c.unfused_extra_traffic_bytes();
        assert!(unfused > 1.5 * c.min_traffic_bytes());
    }

    #[test]
    fn single_matmul_axes() {
        let c = ChainSpec::single_matmul("mm", 1, 128, 64, 32);
        assert_eq!(c.num_ops(), 1);
        assert_eq!(c.num_axes(), 3); // m, k, n
        assert!(!c.has_softmax());
    }

    #[test]
    fn relu_epilogue_in_reference() {
        let mut c = ChainSpec::gemm_chain("g", 1, 4, 4, 4, 4);
        c.epilogues[0] = Epilogue::Relu;
        let inputs = c.random_inputs(11);
        let out = c.reference(&inputs);
        // With ReLU on the intermediate, output == relu(A×B)×D.
        let plain = {
            let mut c2 = c.clone();
            c2.epilogues[0] = Epilogue::None;
            c2.reference(&inputs)
        };
        // They should differ unless A×B was entirely nonnegative (it isn't
        // with random signed data at this size, overwhelmingly likely).
        assert!(out.max_abs_diff(&plain) > 1e-6);
    }

    #[test]
    fn scale_epilogue_scales() {
        let mut v = vec![1.0f32, -2.0, 3.0];
        apply_epilogue(Epilogue::Scale(0.5), &mut v, 1, 3);
        assert_eq!(v, vec![0.5, -1.0, 1.5]);
    }

    #[test]
    fn aux_inputs_follow_weights_in_canonical_order() {
        let mut c = ChainSpec::chain(
            "c",
            1,
            64,
            vec![32, 48, 32, 48],
            vec![Epilogue::Relu, Epilogue::None, Epilogue::None],
        );
        c.biases = vec![true, false, true];
        assert_eq!(
            c.aux_inputs(),
            vec![AuxInput::Bias { stage: 0 }, AuxInput::Bias { stage: 2 }]
        );
        assert_eq!(c.num_inputs(), 6);
        assert_eq!(c.aux_index(AuxInput::Bias { stage: 0 }), Some(4));
        assert_eq!(c.aux_index(AuxInput::Bias { stage: 2 }), Some(5));
        assert_eq!(c.aux_index(AuxInput::Bias { stage: 1 }), None);
        assert_eq!(c.input_shapes()[4], vec![48]);
        assert_eq!(c.input_shapes()[5], vec![48]);
    }

    #[test]
    fn masked_attention_aux_is_the_mask() {
        let c = ChainSpec::masked_attention("s", 4, 64, 64, 32, 32);
        assert_eq!(c.aux_inputs(), vec![AuxInput::Mask { stage: 0 }]);
        assert_eq!(c.aux_shape(AuxInput::Mask { stage: 0 }), vec![4, 64, 64]);
        assert_eq!(c.num_inputs(), 4);
    }

    #[test]
    fn biased_reference_adds_bias() {
        let mut c = ChainSpec::gemm_chain("g", 1, 4, 4, 4, 4);
        c.biases = vec![true, false];
        let mut inputs = c.random_inputs(5);
        // Zero the bias: must equal the unbiased chain exactly.
        let plain = {
            let c2 = {
                let mut c2 = c.clone();
                c2.biases = vec![false, false];
                c2
            };
            c2.reference(&inputs[..3])
        };
        inputs[3] = HostTensor::from_vec(&[4], vec![0.0; 4]);
        let zeroed = c.reference(&inputs);
        assert_eq!(zeroed.data, plain.data);
        // A nonzero bias must change the output.
        inputs[3] = HostTensor::from_vec(&[4], vec![1.0; 4]);
        assert!(c.reference(&inputs).max_abs_diff(&plain) > 1e-6);
    }

    #[test]
    fn causal_mask_reference_is_causal() {
        let c = ChainSpec::masked_attention("s", 2, 8, 8, 4, 4);
        let mut inputs = c.random_inputs(9);
        inputs[3] = causal_mask(2, 8, 8);
        let out = c.reference(&inputs);
        // Row 0 attends only to position 0 → output row 0 == V row 0.
        let v = &inputs[2];
        for b in 0..2usize {
            for j in 0..4usize {
                let got = out.data[b * 8 * 4 + j];
                let want = v.data[b * 8 * 4 + j];
                assert!((got - want).abs() < 1e-5, "{got} vs {want}");
            }
        }
        assert!(out.data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn masked_softmax_rows_sum_to_one_where_unmasked() {
        let mut scores = vec![1.0f32, 2.0, 3.0, 4.0];
        let mask = vec![0.0f32, 0.0, -1.0e9, -1.0e9];
        apply_masked_softmax(&mut scores, &mask, 1, 4, 0.5);
        let s: f32 = scores.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(scores[2] < 1e-12 && scores[3] < 1e-12);
    }

    #[test]
    fn gelu_epilogue_matches_reference_gelu() {
        let mut v = vec![-1.0f32, 0.0, 1.0, 2.5];
        apply_epilogue(Epilogue::Gelu, &mut v, 1, 4);
        for (a, x) in v.iter().zip([-1.0f32, 0.0, 1.0, 2.5]) {
            assert_eq!(*a, crate::reference::gelu(x));
        }
    }

    #[test]
    fn chain_constructor_checks_lengths() {
        let c = ChainSpec::chain("c", 2, 64, vec![32, 48, 32], vec![Epilogue::Relu; 2]);
        assert_eq!(c.num_ops(), 2);
        assert_eq!(c.biases, vec![false, false]);
    }

    fn stitched_ffn(m: u64, d: u64, f: u64) -> ChainSpec {
        let mut c = ChainSpec::chain(
            "ffn",
            1,
            m,
            vec![d, f, d],
            vec![Epilogue::Gelu, Epilogue::None],
        );
        c.biases = vec![true, true];
        c.prologue = Some(PrologueSpec {
            residual: true,
            affine: true,
            a_half: false,
            eps: 1e-5,
        });
        c.stitch_epilogue = Some(EpilogueStitch {
            residual: ResidualSource::PrologueOut,
            layer_norm: true,
            affine: true,
            eps: 1e-5,
        });
        c
    }

    #[test]
    fn stitched_aux_inputs_follow_bias_and_mask() {
        let c = stitched_ffn(64, 32, 48);
        assert_eq!(
            c.aux_inputs(),
            vec![
                AuxInput::Bias { stage: 0 },
                AuxInput::Bias { stage: 1 },
                AuxInput::PrologueResidual,
                AuxInput::PrologueGamma,
                AuxInput::PrologueBeta,
                AuxInput::TailGamma,
                AuxInput::TailBeta,
            ]
        );
        // A + 2 weights + 7 aux.
        assert_eq!(c.num_inputs(), 10);
        assert_eq!(c.aux_shape(AuxInput::PrologueResidual), vec![1, 64, 32]);
        assert_eq!(c.aux_shape(AuxInput::PrologueGamma), vec![32]);
        assert_eq!(c.aux_shape(AuxInput::TailGamma), vec![32]);
    }

    #[test]
    fn stitched_reference_equals_unstitched_plus_glue() {
        // Composing the unstitched chain with hand-applied glue ops
        // (residual add + LN in, quantize + residual add + LN out) must
        // reproduce the stitched reference bit-for-bit.
        let c = stitched_ffn(16, 8, 24);
        let inputs = c.random_inputs(42);
        let stitched = c.reference(&inputs);

        let u = c.unstitched();
        // Build the unstitched A: quantize(LN(A + res)).
        let mut a = inputs[0].data.clone();
        let res = &inputs[c.aux_index(AuxInput::PrologueResidual).unwrap()].data;
        for (v, r) in a.iter_mut().zip(res) {
            *v += *r;
        }
        let g1 = &inputs[c.aux_index(AuxInput::PrologueGamma).unwrap()].data;
        let b1 = &inputs[c.aux_index(AuxInput::PrologueBeta).unwrap()].data;
        layer_norm_rows(&mut a, 16, 8, 1e-5, Some(g1), Some(b1));
        let ln1_raw = a.clone();
        for v in a.iter_mut() {
            *v = c.dtype.quantize(*v);
        }
        let mut u_inputs = vec![HostTensor::from_vec(&[1, 16, 8], a)];
        u_inputs.extend_from_slice(&inputs[1..1 + u.num_inputs() - 1]);
        let mut out = u.reference(&u_inputs).data;
        for (v, r) in out.iter_mut().zip(&ln1_raw) {
            *v = c.dtype.quantize(*v) + *r;
        }
        let g2 = &inputs[c.aux_index(AuxInput::TailGamma).unwrap()].data;
        let b2 = &inputs[c.aux_index(AuxInput::TailBeta).unwrap()].data;
        layer_norm_rows(&mut out, 16, 8, 1e-5, Some(g2), Some(b2));
        assert_eq!(stitched.data, out);
    }

    #[test]
    fn external_tail_residual_uses_aux_input() {
        let mut c = ChainSpec::gemm_chain("g", 1, 8, 8, 8, 8);
        c.stitch_epilogue = Some(EpilogueStitch {
            residual: ResidualSource::External,
            layer_norm: false,
            affine: false,
            eps: 1e-5,
        });
        assert_eq!(c.aux_inputs(), vec![AuxInput::TailResidual]);
        let inputs = c.random_inputs(3);
        let out = c.reference(&inputs);
        let plain = c.unstitched().reference(&inputs[..3]);
        let res = &inputs[3];
        for ((o, p), r) in out.data.iter().zip(&plain.data).zip(&res.data) {
            assert_eq!(*o, c.dtype.quantize(*p) + *r);
        }
    }

    #[test]
    fn stitched_intensity_below_plain_intensity() {
        // The raw f32 double-pass reads fatten the denominator: stitching
        // lowers the first op's standalone intensity.
        let c = stitched_ffn(512, 512, 2048);
        assert!(c.stitched_op_intensity(0) < c.op_intensity(0));
        // Unstitched chains agree with the plain measure.
        let u = c.unstitched();
        assert_eq!(u.stitched_op_intensity(0), u.op_intensity(0));
        assert_eq!(u.stitched_op_intensity(1), u.op_intensity(1));
    }

    #[test]
    fn operational_intensity_grows_with_k() {
        // For a single matmul, φ = 2mnk/(mk + kn + mn) grows with k —
        // the transition behind the paper's Fig. 2.
        let lo = ChainSpec::single_matmul("a", 1, 1024, 1024, 16);
        let hi = ChainSpec::single_matmul("b", 1, 1024, 1024, 1024);
        assert!(hi.operational_intensity() > lo.operational_intensity());
    }
}
