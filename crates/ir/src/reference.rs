//! CPU reference execution of operator graphs — the numerical oracle.
//!
//! Every operator is implemented naively in f32. The end-to-end compiler's
//! output is validated against this executor, which is the reproduction's
//! stand-in for "PyTorch eager mode produced the same logits".

use rustc_hash::FxHashMap;

use mcfuser_sim::exec_vec::lanes;
use mcfuser_sim::HostTensor;

use crate::graph::{Graph, GraphError, NodeId, Op};

/// Deterministically initialize a weight tensor from the graph name, node
/// name and a global seed (small values keep deep models numerically tame).
pub fn init_weight(graph: &Graph, node: NodeId, seed: u64) -> HostTensor {
    use rand::{Rng, SeedableRng};
    use std::hash::{Hash, Hasher};
    let n = graph.node(node);
    let mut h = rustc_hash::FxHasher::default();
    graph.name.hash(&mut h);
    n.name.hash(&mut h);
    seed.hash(&mut h);
    let mut rng = rand::rngs::StdRng::seed_from_u64(h.finish());
    let len = n.shape.iter().product::<u64>() as usize;
    let fan_in = *n.shape.first().unwrap_or(&1) as f32;
    let scale = (1.0 / fan_in.max(1.0)).sqrt();
    HostTensor::from_vec(
        &n.shape,
        (0..len).map(|_| rng.gen_range(-scale..scale)).collect(),
    )
}

/// Evaluate a graph. `inputs` maps every `Op::Input` node to its tensor;
/// weights are materialized from `seed`. Returns the value of every node.
pub fn evaluate(
    graph: &Graph,
    inputs: &FxHashMap<NodeId, HostTensor>,
    seed: u64,
) -> Result<Vec<HostTensor>, GraphError> {
    let mut values: Vec<Option<HostTensor>> = vec![None; graph.nodes.len()];
    for i in 0..graph.nodes.len() {
        let v = evaluate_node(graph, NodeId(i), &values, inputs, seed)?;
        values[i] = Some(v);
    }
    Ok(values.into_iter().map(Option::unwrap).collect())
}

/// Operand lookup used by [`evaluate_node_with`]: resolves a node id to
/// its already-computed value, wherever the caller keeps it (a plain
/// slot table, a borrowed request tensor, a shared weight cache entry).
pub type ValueLookup<'f, 'v> = &'f dyn Fn(NodeId) -> Option<&'v HostTensor>;

/// Evaluate a single node given the values of all earlier nodes (used by
/// the fused-execution path in `mcfuser-core`, which overrides chain
/// outputs with simulator results while evaluating everything else here).
pub fn evaluate_node(
    graph: &Graph,
    id: NodeId,
    values: &[Option<HostTensor>],
    inputs: &FxHashMap<NodeId, HostTensor>,
    seed: u64,
) -> Result<HostTensor, GraphError> {
    evaluate_node_with(graph, id, &|n| values[n.0].as_ref(), inputs, seed)
}

/// [`evaluate_node`] generalized over how operand values are stored: the
/// caller supplies a lookup closure instead of a dense `Option` slice.
/// `mcfuser-core`'s serving path keeps request inputs borrowed and
/// weights behind a shared cache; this entry point lets it evaluate
/// reference operators without first cloning every operand into an
/// owned table.
pub fn evaluate_node_with<'v>(
    graph: &Graph,
    id: NodeId,
    values: ValueLookup<'_, 'v>,
    inputs: &FxHashMap<NodeId, HostTensor>,
    seed: u64,
) -> Result<HostTensor, GraphError> {
    let node = graph.node(id);
    {
        let i = id.0;
        let _ = i;
        let v = match &node.op {
            Op::Input => inputs
                .get(&id)
                .cloned()
                .ok_or_else(|| GraphError::ShapeMismatch {
                    node: node.name.clone(),
                    detail: "missing input tensor".into(),
                })?,
            Op::Weight => init_weight(graph, id, seed),
            Op::Linear => eval_linear(graph, node, values)?,
            Op::BatchMatMul { transpose_b } => eval_bmm(graph, node, values, *transpose_b)?,
            Op::Softmax { scale } => {
                let x = value(values, node.inputs[0]);
                let cols = *x.shape.last().unwrap() as usize;
                let rows = x.len() / cols;
                let mut data = x.data.clone();
                crate::chain::apply_epilogue(
                    crate::chain::Epilogue::Softmax { scale: *scale },
                    &mut data,
                    rows,
                    cols,
                );
                HostTensor::from_vec(&x.shape, data)
            }
            Op::Add => {
                let a = value(values, node.inputs[0]);
                let b = value(values, node.inputs[1]);
                if a.shape != b.shape {
                    return Err(GraphError::ShapeMismatch {
                        node: node.name.clone(),
                        detail: format!("{:?} + {:?}", a.shape, b.shape),
                    });
                }
                HostTensor::from_vec(&a.shape, lanes::add(&a.data, &b.data))
            }
            Op::Relu => {
                let x = value(values, node.inputs[0]);
                HostTensor::from_vec(&x.shape, lanes::relu(&x.data))
            }
            Op::Gelu => {
                let x = value(values, node.inputs[0]);
                HostTensor::from_vec(&x.shape, lanes::gelu(&x.data))
            }
            Op::LayerNorm => {
                let x = value(values, node.inputs[0]);
                let affine = if node.inputs.len() > 2 {
                    Some((value(values, node.inputs[1]), value(values, node.inputs[2])))
                } else {
                    None
                };
                let cols = *x.shape.last().unwrap() as usize;
                let rows = x.len() / cols;
                let mut out = x.data.clone();
                for r in 0..rows {
                    let row = &mut out[r * cols..(r + 1) * cols];
                    let mean: f32 = row.iter().sum::<f32>() / cols as f32;
                    let var: f32 =
                        row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
                    let inv = 1.0 / (var + 1e-5).sqrt();
                    // Op order must match the stitched kernel's
                    // `NormalizeTile`: normalize, then `* gamma`, then
                    // `+ beta` — bit-identity depends on it.
                    for (c, v) in row.iter_mut().enumerate() {
                        let mut n = (*v - mean) * inv;
                        if let Some((g, b)) = affine {
                            n *= g.data[c];
                            n += b.data[c];
                        }
                        *v = n;
                    }
                }
                HostTensor::from_vec(&x.shape, out)
            }
            Op::Scale(f) => {
                let x = value(values, node.inputs[0]);
                HostTensor::from_vec(&x.shape, lanes::scale(&x.data, *f))
            }
            Op::Reshape => {
                let x = value(values, node.inputs[0]);
                HostTensor::from_vec(&node.shape, x.data.clone())
            }
            Op::SplitHeads { heads } => {
                let x = value(values, node.inputs[0]);
                let h = *heads as usize;
                let t = x.shape[0] as usize;
                let width = x.shape[1] as usize;
                let hd = width / h;
                let mut out = vec![0.0f32; t * width];
                for hi in 0..h {
                    for ti in 0..t {
                        let src = ti * width + hi * hd;
                        let dst = (hi * t + ti) * hd;
                        out[dst..dst + hd].copy_from_slice(&x.data[src..src + hd]);
                    }
                }
                HostTensor::from_vec(&node.shape, out)
            }
            Op::MergeHeads => {
                let x = value(values, node.inputs[0]);
                let h = x.shape[0] as usize;
                let t = x.shape[1] as usize;
                let hd = x.shape[2] as usize;
                let width = h * hd;
                let mut out = vec![0.0f32; t * width];
                for hi in 0..h {
                    for ti in 0..t {
                        let src = (hi * t + ti) * hd;
                        let dst = ti * width + hi * hd;
                        out[dst..dst + hd].copy_from_slice(&x.data[src..src + hd]);
                    }
                }
                HostTensor::from_vec(&node.shape, out)
            }
            Op::RepeatKv { repeat } => {
                let x = value(values, node.inputs[0]);
                let rep = *repeat as usize;
                let kv = x.shape[0] as usize;
                let panel = (x.shape[1] * x.shape[2]) as usize;
                let mut out = vec![0.0f32; kv * rep * panel];
                for h in 0..kv * rep {
                    let src = (h / rep) * panel;
                    out[h * panel..(h + 1) * panel].copy_from_slice(&x.data[src..src + panel]);
                }
                HostTensor::from_vec(&node.shape, out)
            }
        };
        Ok(v)
    }
}

fn value<'v>(values: ValueLookup<'_, 'v>, id: NodeId) -> &'v HostTensor {
    values(id).expect("topological order violated")
}

/// tanh-approximation GELU — delegates to the simulator's kernel
/// (`mcfuser_sim::gelu`) so the reference oracle and the functional
/// interpreter share one bit-identical implementation.
pub fn gelu(x: f32) -> f32 {
    mcfuser_sim::gelu(x)
}

fn eval_linear(
    _graph: &Graph,
    node: &crate::graph::Node,
    values: ValueLookup<'_, '_>,
) -> Result<HostTensor, GraphError> {
    let x = value(values, node.inputs[0]);
    let w = value(values, node.inputs[1]);
    let k = *x.shape.last().unwrap() as usize;
    let m = x.len() / k;
    let n = w.shape[1] as usize;
    if w.shape[0] as usize != k {
        return Err(GraphError::ShapeMismatch {
            node: node.name.clone(),
            detail: format!("x cols {} vs w rows {}", k, w.shape[0]),
        });
    }
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = x.data[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let wrow = &w.data[kk * n..(kk + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            lanes::axpy(orow, wrow, av);
        }
    }
    if node.inputs.len() > 2 {
        let b = value(values, node.inputs[2]);
        for i in 0..m {
            lanes::add_assign(&mut out[i * n..(i + 1) * n], &b.data[..n]);
        }
    }
    Ok(HostTensor::from_vec(&node.shape, out))
}

fn eval_bmm(
    _graph: &Graph,
    node: &crate::graph::Node,
    values: ValueLookup<'_, '_>,
    transpose_b: bool,
) -> Result<HostTensor, GraphError> {
    let a = value(values, node.inputs[0]);
    let b = value(values, node.inputs[1]);
    let rank = a.shape.len();
    let m = a.shape[rank - 2] as usize;
    let k = a.shape[rank - 1] as usize;
    let batch: usize = a.shape[..rank - 2].iter().product::<u64>() as usize;
    let n = if transpose_b {
        b.shape[b.shape.len() - 2] as usize
    } else {
        b.shape[b.shape.len() - 1] as usize
    };
    let bk = if transpose_b {
        b.shape[b.shape.len() - 1] as usize
    } else {
        b.shape[b.shape.len() - 2] as usize
    };
    if bk != k {
        return Err(GraphError::ShapeMismatch {
            node: node.name.clone(),
            detail: format!("contraction dims {k} vs {bk}"),
        });
    }
    let mut out = vec![0.0f32; batch * m * n];
    for bb in 0..batch {
        let ab = bb * m * k;
        let bbase = bb * k * n; // same element count either layout
        let ob = bb * m * n;
        for i in 0..m {
            let arow = &a.data[ab + i * k..ab + (i + 1) * k];
            for j in 0..n {
                // Both layouts keep the interpreter's sequential-k order;
                // only the transposed one has a contiguous b row to hand
                // to the lane dot.
                let s = if transpose_b {
                    lanes::dot(arow, &b.data[bbase + j * k..bbase + (j + 1) * k])
                } else {
                    let mut s = 0.0f32;
                    for (kk, &av) in arow.iter().enumerate() {
                        s += av * b.data[bbase + kk * n + j];
                    }
                    s
                };
                out[ob + i * n + j] = s;
            }
        }
    }
    Ok(HostTensor::from_vec(&node.shape, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use mcfuser_sim::DType;

    fn input_map(pairs: Vec<(NodeId, HostTensor)>) -> FxHashMap<NodeId, HostTensor> {
        pairs.into_iter().collect()
    }

    #[test]
    fn linear_with_bias() {
        let mut gb = GraphBuilder::new("t", DType::F32);
        let x = gb.input("x", vec![2, 3]);
        let y = gb.linear("fc", x, 2, true);
        let g = gb.finish(vec![y]);
        let xs = HostTensor::from_vec(&[2, 3], vec![1., 0., 0., 0., 1., 0.]);
        let vals = evaluate(&g, &input_map(vec![(x, xs)]), 0).unwrap();
        // x selects rows of W, so out rows = W rows 0 and 1 (+ bias).
        let w = &vals[1]; // weight node comes right after x
        let b = &vals[2];
        let out = &vals[y.0];
        for j in 0..2 {
            assert!((out.data[j] - (w.data[j] + b.data[j])).abs() < 1e-6);
            assert!((out.data[2 + j] - (w.data[2 + j] + b.data[j])).abs() < 1e-6);
        }
    }

    #[test]
    fn bmm_transpose_matches_manual() {
        let mut gb = GraphBuilder::new("t", DType::F32);
        let q = gb.input("q", vec![1, 2, 3]);
        let k = gb.input("k", vec![1, 2, 3]);
        let s = gb.batch_matmul("qk", q, k, true);
        let g = gb.finish(vec![s]);
        let qs = HostTensor::from_vec(&[1, 2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let ks = HostTensor::from_vec(&[1, 2, 3], vec![1., 0., 1., 0., 1., 0.]);
        let vals = evaluate(&g, &input_map(vec![(q, qs), (k, ks)]), 0).unwrap();
        // scores[0,0] = (1,2,3)·(1,0,1) = 4; [0,1] = (1,2,3)·(0,1,0) = 2
        assert_eq!(vals[s.0].data, vec![4., 2., 10., 5.]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut gb = GraphBuilder::new("t", DType::F32);
        let x = gb.input("x", vec![1, 8]);
        let y = gb.layer_norm("ln", x);
        let g = gb.finish(vec![y]);
        let xs = HostTensor::from_vec(&[1, 8], (0..8).map(|i| i as f32).collect());
        let vals = evaluate(&g, &input_map(vec![(x, xs)]), 0).unwrap();
        let out = &vals[y.0].data;
        let mean: f32 = out.iter().sum::<f32>() / 8.0;
        let var: f32 = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_node_normalizes() {
        let mut gb = GraphBuilder::new("t", DType::F32);
        let x = gb.input("x", vec![2, 4]);
        let y = gb.softmax("sm", x, 1.0);
        let g = gb.finish(vec![y]);
        let xs = HostTensor::from_vec(&[2, 4], vec![1., 2., 3., 4., -1., -2., -3., -4.]);
        let vals = evaluate(&g, &input_map(vec![(x, xs)]), 0).unwrap();
        for r in 0..2 {
            let s: f32 = vals[y.0].data[r * 4..(r + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let mut gb = GraphBuilder::new("t", DType::F32);
        let x = gb.input("x", vec![2, 3]);
        let y = gb.linear("fc", x, 2, false);
        let g = gb.finish(vec![y]);
        let w1 = init_weight(&g, NodeId(1), 42);
        let w2 = init_weight(&g, NodeId(1), 42);
        let w3 = init_weight(&g, NodeId(1), 43);
        assert_eq!(w1.data, w2.data);
        assert_ne!(w1.data, w3.data);
    }

    #[test]
    fn gelu_known_values() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8411).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn missing_input_is_error() {
        let mut gb = GraphBuilder::new("t", DType::F32);
        let x = gb.input("x", vec![2, 3]);
        let g = gb.finish(vec![x]);
        let res = evaluate(&g, &FxHashMap::default(), 0);
        assert!(res.is_err());
    }
}
