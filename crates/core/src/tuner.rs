//! The MCFuser tuner — the user-facing entry point for one MBCI chain.
//!
//! `McFuser::tune` runs the full §III–§IV pipeline: generate the search
//! space, prune it with Rules 1–4, explore with Algorithm 1, and return
//! the winning fused kernel together with the pruning waterfall and the
//! virtual tuning-time report (the quantities behind Figs. 7–11 and
//! Table IV).

use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;
use mcfuser_sim::{DeviceSpec, KernelProfile, TuningClock, TuningReport};
use mcfuser_tile::{Candidate, LoweredKernel};

use crate::prune::{prune, PruneStats};
use crate::search::{heuristic_search, SearchOutcome, SearchParams};
use crate::space::SearchSpace;

/// Tuning failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneError {
    /// Every candidate was pruned or unlaunchable on the device.
    NoViableCandidate,
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NoViableCandidate => f.write_str("no viable fused kernel"),
        }
    }
}

impl std::error::Error for TuneError {}

/// A tuned fused kernel with full provenance.
#[derive(Debug, Clone)]
pub struct TunedKernel {
    /// The chain that was tuned.
    pub chain: ChainSpec,
    /// The winning schedule.
    pub candidate: Candidate,
    /// The lowered kernel.
    pub kernel: LoweredKernel,
    /// Measured device profile (time, traffic, occupancy …).
    pub profile: KernelProfile,
    /// Virtual tuning-time report.
    pub tuning: TuningReport,
    /// Pruning waterfall.
    pub prune_stats: PruneStats,
    /// Search convergence data.
    pub rounds: usize,
    /// Candidates actually measured.
    pub measured: usize,
}

/// The MCFuser tuner.
#[derive(Debug, Clone, Default)]
pub struct McFuser {
    /// Algorithm 1 parameters.
    pub params: SearchParams,
}

impl McFuser {
    /// Tuner with default parameters (the paper's `n = 8`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tune one chain for a device.
    pub fn tune(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<TunedKernel, TuneError> {
        let clock = TuningClock::new();
        self.tune_with_clock(chain, dev, &clock)
    }

    /// Tune, accumulating costs into an external clock (used by the
    /// end-to-end compiler which tunes many sub-graphs).
    pub fn tune_with_clock(
        &self,
        chain: &ChainSpec,
        dev: &DeviceSpec,
        clock: &TuningClock,
    ) -> Result<TunedKernel, TuneError> {
        let space = SearchSpace::generate(chain);
        let pruned = prune(chain, dev, &space);
        let outcome: SearchOutcome = heuristic_search(chain, dev, &pruned, &self.params, clock)
            .ok_or(TuneError::NoViableCandidate)?;
        Ok(TunedKernel {
            chain: chain.clone(),
            candidate: outcome.best,
            kernel: outcome.kernel,
            profile: outcome.profile,
            tuning: clock.report(),
            prune_stats: pruned.stats,
            rounds: outcome.rounds,
            measured: outcome.measured,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_sim::{execute, TensorStorage};

    #[test]
    fn tuned_gemm_chain_is_numerically_correct() {
        let chain = ChainSpec::gemm_chain("g", 1, 128, 96, 64, 80);
        let dev = DeviceSpec::a100();
        let tk = McFuser::new().tune(&chain, &dev).unwrap();
        let inputs = chain.random_inputs(1);
        let mut st = TensorStorage::for_program(&tk.kernel.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&tk.kernel.program, &mut st).unwrap();
        let expect = chain.reference(&inputs);
        let err = st.tensors.last().unwrap().rel_l2_error(&expect);
        assert!(err < 2e-2, "rel error {err}");
    }

    #[test]
    fn tuned_attention_is_numerically_correct() {
        let chain = ChainSpec::attention("s", 2, 128, 128, 32, 32);
        let dev = DeviceSpec::a100();
        let tk = McFuser::new().tune(&chain, &dev).unwrap();
        let inputs = chain.random_inputs(2);
        let mut st = TensorStorage::for_program(&tk.kernel.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&tk.kernel.program, &mut st).unwrap();
        let expect = chain.reference(&inputs);
        let err = st.tensors.last().unwrap().rel_l2_error(&expect);
        assert!(err < 2e-2, "rel error {err}");
    }

    #[test]
    fn tuning_report_shows_analytical_model_benefits() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 128, 128);
        let tk = McFuser::new().tune(&chain, &DeviceSpec::a100()).unwrap();
        // Far fewer measurements than estimates — the paper's core claim.
        assert!(tk.tuning.estimates > 10 * tk.tuning.measurements);
        assert_eq!(tk.tuning.train_rounds, 0);
        // Tuning finishes in tens of virtual seconds, not thousands.
        assert!(
            tk.tuning.virtual_seconds < 300.0,
            "{}",
            tk.tuning.virtual_seconds
        );
    }

    #[test]
    fn prune_stats_propagated() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let tk = McFuser::new().tune(&chain, &DeviceSpec::a100()).unwrap();
        assert!(tk.prune_stats.original > tk.prune_stats.after_rule4);
    }
}
