//! The MCFuser tuner — the user-facing entry point for one MBCI chain.
//!
//! `McFuser::tune` runs the full §III–§IV pipeline: generate the search
//! space, prune it with Rules 1–4, explore with Algorithm 1, and return
//! the winning fused kernel together with the pruning waterfall and the
//! virtual tuning-time report (the quantities behind Figs. 7–11 and
//! Table IV).

use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;
use mcfuser_sim::{DeviceSpec, KernelProfile, TuningClock, TuningReport};
use mcfuser_tile::{Candidate, LoweredKernel};

use crate::prune::PruneStats;
use crate::search::{heuristic_search, SearchOutcome, SearchParams};
use crate::space::{CandidateSpace, SearchSpace};

/// Why Rule 4 emptied a search space: even the smallest tile
/// combination's Eq. 1 estimate exceeds the device's budget (with the
/// 1.2× margin). Carried by [`TuneError::EmptySearchSpace`] so the
/// failure names the responsible rule and the numbers behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule4Rejection {
    /// Smallest Eq. 1 shared-memory estimate across the Rule-3 grid.
    pub min_estimated_smem: u64,
    /// The device budget (`Shm_max`) the estimate must fit 1.2× of.
    pub smem_per_block: u64,
}

/// Tuning failure, carrying enough context to identify which task of a
/// multi-chain session failed and where.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneError {
    /// Pruning left nothing to search (the space itself is empty).
    EmptySearchSpace {
        /// Chain name.
        chain: String,
        /// Device name.
        device: String,
        /// When a specific axis produced an empty tile domain (e.g.
        /// Rule 3 filtered every option away), its name and extent —
        /// the context that used to be silently lost.
        axis: Option<String>,
        /// When Rule 4 rejected every tile combination of a non-empty
        /// Rule-3 grid: the smallest estimate vs. the device budget.
        rule4: Option<Rule4Rejection>,
    },
    /// Candidates existed but every one failed lowering or exceeded the
    /// device's launch limits.
    NoViableCandidate {
        /// Chain name.
        chain: String,
        /// Device name.
        device: String,
    },
    /// The search produced a winner, but the static verifier (symbolic
    /// bounds, init/def-use, inter-block race analysis — see
    /// `mcfuser_sim::verify`) rejected its lowered program. The kernel
    /// is never cached or served; stitched chains demote to their
    /// unstitched twin.
    Verify {
        /// Chain name.
        chain: String,
        /// Device name.
        device: String,
        /// The rendered `VerifyError`.
        detail: String,
    },
    /// `FusionEngine::compile` was called on an engine built without a
    /// fallback `OpCostModel` for the non-fused remainder.
    MissingFallback {
        /// Graph name.
        graph: String,
    },
    /// The compiled model could not be packaged into an
    /// `ExecutablePlan` (`FusionEngine::compile_plan` — an internally
    /// inconsistent graph/model pair).
    Plan {
        /// Graph name.
        graph: String,
        /// The underlying plan error, rendered.
        detail: String,
    },
}

impl TuneError {
    pub(crate) fn empty_space(
        chain: &ChainSpec,
        dev: &DeviceSpec,
        axis: Option<String>,
        rule4: Option<Rule4Rejection>,
    ) -> Self {
        TuneError::EmptySearchSpace {
            chain: chain.name.clone(),
            device: dev.name.clone(),
            axis,
            rule4,
        }
    }

    pub(crate) fn no_viable(chain: &ChainSpec, dev: &DeviceSpec) -> Self {
        TuneError::NoViableCandidate {
            chain: chain.name.clone(),
            device: dev.name.clone(),
        }
    }
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::EmptySearchSpace {
                chain,
                device,
                axis,
                rule4,
            } => {
                write!(f, "search space of chain '{chain}' is empty on {device}")?;
                if let Some(a) = axis {
                    write!(f, " (axis {a} has no admissible tile sizes)")?;
                }
                if let Some(r) = rule4 {
                    write!(
                        f,
                        " (Rule 4 rejected every tile combination: smallest estimated \
                         shared memory {} B exceeds 1.2 x the device's {} B per block)",
                        r.min_estimated_smem, r.smem_per_block
                    )?;
                }
                Ok(())
            }
            TuneError::NoViableCandidate { chain, device } => {
                write!(f, "no viable fused kernel for chain '{chain}' on {device}")
            }
            TuneError::Verify {
                chain,
                device,
                detail,
            } => write!(
                f,
                "tuned kernel for chain '{chain}' on {device} failed static verification: {detail}"
            ),
            TuneError::MissingFallback { graph } => write!(
                f,
                "cannot compile graph '{graph}': engine has no fallback backend \
                 for non-fused operators (set one via EngineBuilder::fallback)"
            ),
            TuneError::Plan { graph, detail } => {
                write!(f, "cannot plan compiled graph '{graph}': {detail}")
            }
        }
    }
}

impl std::error::Error for TuneError {}

/// How the tuner constructs the space it searches. The default is the
/// full MCFuser pipeline; the alternatives reproduce the restricted
/// configurations of the paper's ablation (§VI-E) and the
/// MCFuser-Chimera comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpacePolicy {
    /// Restrict to deep tilings only (Chimera's space restriction).
    pub deep_tiling_only: bool,
    /// Apply Rule 4 (shared-memory estimate filter). Disabling admits
    /// every Rule-3 tile combination, so unlaunchable candidates reach
    /// measurement — the `-rule4` ablation.
    pub shared_memory_pruning: bool,
}

impl Default for SpacePolicy {
    fn default() -> Self {
        SpacePolicy {
            deep_tiling_only: false,
            shared_memory_pruning: true,
        }
    }
}

/// Build the lazy pruned space a policy admits for a chain on a device.
/// With `shared_memory_pruning` disabled (the `-rule4` ablation) the
/// same space is built with the Rule-4 filter off: every Rule-3 tile
/// combination is addressable — no re-materialization and no cap.
pub fn build_candidate_space(
    chain: &ChainSpec,
    dev: &DeviceSpec,
    policy: &SpacePolicy,
) -> CandidateSpace {
    build_candidate_space_scanned(chain, dev, policy, crate::space::Rule4Scan::Auto)
}

/// [`build_candidate_space`] with an explicit Rule-4 scan strategy —
/// the entry point for the frontier ≡ dense equivalence tests and the
/// pruning benchmarks; production code uses `Auto`.
pub fn build_candidate_space_scanned(
    chain: &ChainSpec,
    dev: &DeviceSpec,
    policy: &SpacePolicy,
    scan: crate::space::Rule4Scan,
) -> CandidateSpace {
    let mut space = SearchSpace::generate(chain);
    if policy.deep_tiling_only {
        space.exprs = mcfuser_tile::enumerate_deep(chain);
    }
    let (reps, tile_domains, stats) = crate::prune::rules123(chain, &space);
    let smem_limit = policy.shared_memory_pruning.then_some(dev.smem_per_block);
    CandidateSpace::build_scanned(chain, reps, tile_domains, smem_limit, stats, scan)
}

/// Locate the first axis whose Rule-3 tile domain came back empty and
/// render it for an [`TuneError::EmptySearchSpace`] — the silent
/// zero-candidate spaces this used to produce surfaced as confusing
/// failures far downstream.
pub(crate) fn empty_axis_context(chain: &ChainSpec, tile_domains: &[Vec<u64>]) -> Option<String> {
    tile_domains
        .iter()
        .position(Vec::is_empty)
        .map(|a| format!("{} (extent {})", chain.axis_name(a), chain.axis_extent(a)))
}

/// Diagnose why Rule 4 emptied a space whose Rule-3 grid was non-empty:
/// report the smallest Eq. 1 estimate against the device budget. `None`
/// when Rule 4 is not the culprit (empty grid, filter disabled, or
/// survivors exist).
pub(crate) fn rule4_rejection_context(
    space: &CandidateSpace,
    dev: &DeviceSpec,
) -> Option<Rule4Rejection> {
    if space.surviving_combos() > 0 || space.grid_combos() == 0 {
        return None;
    }
    space
        .min_estimated_smem()
        .map(|min_estimated_smem| Rule4Rejection {
            min_estimated_smem,
            smem_per_block: dev.smem_per_block,
        })
}

/// A tuned fused kernel with full provenance.
#[derive(Debug, Clone)]
pub struct TunedKernel {
    /// The chain that was tuned.
    pub chain: ChainSpec,
    /// The winning schedule.
    pub candidate: Candidate,
    /// The lowered kernel.
    pub kernel: LoweredKernel,
    /// Measured device profile (time, traffic, occupancy …).
    pub profile: KernelProfile,
    /// Virtual tuning-time report.
    pub tuning: TuningReport,
    /// Pruning waterfall.
    pub prune_stats: PruneStats,
    /// Search convergence data.
    pub rounds: usize,
    /// Candidates actually measured.
    pub measured: usize,
}

/// The MCFuser tuner.
#[derive(Debug, Clone, Default)]
pub struct McFuser {
    /// Algorithm 1 parameters.
    pub params: SearchParams,
}

impl McFuser {
    /// Tuner with default parameters (the paper's `n = 8`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tune one chain for a device.
    pub fn tune(&self, chain: &ChainSpec, dev: &DeviceSpec) -> Result<TunedKernel, TuneError> {
        let clock = TuningClock::new();
        self.tune_with_clock(chain, dev, &clock)
    }

    /// Tune, accumulating costs into an external clock (used by the
    /// engine/compiler layer which tunes many sub-graphs).
    pub fn tune_with_clock(
        &self,
        chain: &ChainSpec,
        dev: &DeviceSpec,
        clock: &TuningClock,
    ) -> Result<TunedKernel, TuneError> {
        self.tune_with_policy(chain, dev, clock, &SpacePolicy::default())
    }

    /// Tune over the space a [`SpacePolicy`] admits (the engine's
    /// configurable pipeline; also drives the ablation variants).
    pub fn tune_with_policy(
        &self,
        chain: &ChainSpec,
        dev: &DeviceSpec,
        clock: &TuningClock,
        policy: &SpacePolicy,
    ) -> Result<TunedKernel, TuneError> {
        let pruned = build_candidate_space(chain, dev, policy);
        self.tune_in_space(chain, dev, clock, &pruned)
    }

    /// Tune over an already-built candidate space. This is the batched
    /// multi-chain path: the engine's
    /// [`SpaceCache`](crate::space::SpaceCache) builds the space (one
    /// Rule-4 scan) for the first chain of a shape and every same-shaped
    /// chain tunes in it via a shared `Arc` — results are identical to a
    /// per-chain build because the search reads the space immutably (its
    /// interior decode cache only memoizes, never changes decoding).
    ///
    /// The space must have been built for a chain whose *content*
    /// (everything but the name) matches `chain` — see
    /// [`space_fingerprint`](crate::space::space_fingerprint).
    ///
    /// # Panics
    /// If the space's chain content differs from `chain` (a mismatched
    /// space would decode tile vectors of the wrong arity or extents
    /// and tune a kernel for the wrong shape).
    pub fn tune_in_space(
        &self,
        chain: &ChainSpec,
        dev: &DeviceSpec,
        clock: &TuningClock,
        pruned: &CandidateSpace,
    ) -> Result<TunedKernel, TuneError> {
        let built_for = &pruned.chain;
        assert!(
            chain.batch == built_for.batch
                && chain.m == built_for.m
                && chain.dims == built_for.dims
                && chain.epilogues == built_for.epilogues
                && chain.biases == built_for.biases
                && chain.dtype == built_for.dtype,
            "tune_in_space: space was built for chain '{}', whose content \
             differs from '{}'",
            built_for.name,
            chain.name,
        );
        if pruned.is_empty() {
            return Err(TuneError::empty_space(
                chain,
                dev,
                empty_axis_context(chain, &pruned.tile_domains),
                rule4_rejection_context(pruned, dev),
            ));
        }
        let outcome: SearchOutcome = heuristic_search(chain, dev, pruned, &self.params, clock)
            .ok_or_else(|| TuneError::no_viable(chain, dev))?;
        Ok(TunedKernel {
            chain: chain.clone(),
            candidate: outcome.best,
            kernel: outcome.kernel,
            profile: outcome.profile,
            tuning: clock.report(),
            prune_stats: pruned.stats.clone(),
            rounds: outcome.rounds,
            measured: outcome.measured,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_sim::{execute, TensorStorage};

    #[test]
    fn tuned_gemm_chain_is_numerically_correct() {
        let chain = ChainSpec::gemm_chain("g", 1, 128, 96, 64, 80);
        let dev = DeviceSpec::a100();
        let tk = McFuser::new().tune(&chain, &dev).unwrap();
        let inputs = chain.random_inputs(1);
        let mut st = TensorStorage::for_program(&tk.kernel.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&tk.kernel.program, &mut st).unwrap();
        let expect = chain.reference(&inputs);
        let err = st.tensors.last().unwrap().rel_l2_error(&expect);
        assert!(err < 2e-2, "rel error {err}");
    }

    #[test]
    fn tuned_attention_is_numerically_correct() {
        let chain = ChainSpec::attention("s", 2, 128, 128, 32, 32);
        let dev = DeviceSpec::a100();
        let tk = McFuser::new().tune(&chain, &dev).unwrap();
        let inputs = chain.random_inputs(2);
        let mut st = TensorStorage::for_program(&tk.kernel.program);
        for (i, t) in inputs.iter().enumerate() {
            st.tensors[i] = t.clone();
        }
        execute(&tk.kernel.program, &mut st).unwrap();
        let expect = chain.reference(&inputs);
        let err = st.tensors.last().unwrap().rel_l2_error(&expect);
        assert!(err < 2e-2, "rel error {err}");
    }

    #[test]
    fn tuning_report_shows_analytical_model_benefits() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 128, 128);
        let tk = McFuser::new().tune(&chain, &DeviceSpec::a100()).unwrap();
        // Far fewer measurements than estimates — the paper's core claim.
        assert!(tk.tuning.estimates > 10 * tk.tuning.measurements);
        assert_eq!(tk.tuning.train_rounds, 0);
        // Tuning finishes in tens of virtual seconds, not thousands.
        assert!(
            tk.tuning.virtual_seconds < 300.0,
            "{}",
            tk.tuning.virtual_seconds
        );
    }

    #[test]
    fn empty_tile_domain_yields_axis_context() {
        // An empty Rule-3 domain on one axis must surface as a
        // structured EmptySearchSpace naming the axis, not as a silent
        // zero-candidate space.
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let domains = vec![vec![16], vec![], vec![16], vec![16]];
        let ctx = super::empty_axis_context(&chain, &domains).unwrap();
        assert!(ctx.starts_with('k'), "{ctx}");
        assert!(ctx.contains("64"), "{ctx}");
        let err = TuneError::empty_space(&chain, &DeviceSpec::a100(), Some(ctx), None);
        let msg = err.to_string();
        assert!(msg.contains("no admissible tile sizes"), "{msg}");
        assert!(msg.contains('g'), "{msg}");
    }

    #[test]
    fn full_domains_have_no_axis_context() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let domains = vec![vec![16]; 4];
        assert!(super::empty_axis_context(&chain, &domains).is_none());
    }

    #[test]
    fn rule4_rejecting_everything_yields_structured_context() {
        // A device whose shared memory cannot hold even the smallest
        // tile combination: the Rule-3 grid is non-empty but Rule 4
        // rejects all of it. The error must name Rule 4 and quote the
        // smallest estimate against the budget — previously this case
        // surfaced as a context-free EmptySearchSpace.
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let mut dev = DeviceSpec::a100();
        dev.smem_per_block = 256; // 256 B: nothing fits.
        let err = McFuser::new().tune(&chain, &dev).unwrap_err();
        let TuneError::EmptySearchSpace { axis, rule4, .. } = &err else {
            panic!("expected EmptySearchSpace, got {err:?}");
        };
        assert!(axis.is_none(), "no axis is empty here");
        let r = rule4.expect("rule 4 context present");
        assert_eq!(r.smem_per_block, 256);
        assert!(r.min_estimated_smem as f64 > 1.2 * 256.0);
        let msg = err.to_string();
        assert!(msg.contains("Rule 4"), "{msg}");
        assert!(msg.contains("256"), "{msg}");
    }

    #[test]
    fn rule4_context_absent_when_survivors_exist() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let space = build_candidate_space(&chain, &dev, &SpacePolicy::default());
        assert!(super::rule4_rejection_context(&space, &dev).is_none());
    }

    #[test]
    fn rule4_disabled_space_admits_full_rule3_grid() {
        // The -rule4 ablation reuses the same lazy space with the filter
        // off: every Rule-3 combination is reachable, uncapped.
        let chain = ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512);
        let dev = DeviceSpec::a100();
        let on = build_candidate_space(&chain, &dev, &SpacePolicy::default());
        let off = build_candidate_space(
            &chain,
            &dev,
            &SpacePolicy {
                shared_memory_pruning: false,
                ..Default::default()
            },
        );
        assert_eq!(off.surviving_combos(), off.grid_combos());
        assert_eq!(off.stats.after_rule4, off.stats.after_rule3);
        assert!(off.len() > on.len());
        // Unlaunchable candidates are now reachable (that is the point
        // of the ablation: they reach measurement and cost compiles).
        let over = (0..off.len())
            .step_by((off.len() / 509).max(1) as usize)
            .map(|i| off.candidate(i))
            .any(|c| !mcfuser_tile::rule4_fits(&chain, &c, dev.smem_per_block));
        assert!(over, "expected some over-budget candidates with -rule4");
    }

    #[test]
    fn prune_stats_propagated() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let tk = McFuser::new().tune(&chain, &DeviceSpec::a100()).unwrap();
        assert!(tk.prune_stats.original > tk.prune_stats.after_rule4);
    }
}
