//! # mcfuser-core — the MCFuser framework
//!
//! The paper's primary contribution, reproduced end to end:
//!
//! * [`space`] — comprehensive search-space generation from tiling
//!   expressions (§III-A), and the lazy O(1)-indexed
//!   [`CandidateSpace`] the tuner explores — no candidate `Vec`, no
//!   materialization cap, every pruning survivor reachable by index;
//!   spaces are content-addressed and shared across same-shaped chains
//!   through the engine-level [`SpaceCache`], and large grids build
//!   their Rule-4 index with a monotone per-axis frontier
//!   ([`Rule4Scan`]) instead of a dense sweep;
//! * [`prune`](mod@prune) — pruning Rules 1–4 with the Fig. 7 waterfall (§III-C);
//!   Rule 4 is a parallel scan that becomes the space's survivor index,
//!   so [`PruneStats::after_rule4`](prune::PruneStats::after_rule4) is
//!   exact at any scale;
//! * [`perf_model`] — the analytical performance model, Eqs. 2–5 (§IV-A);
//! * [`search`] — the heuristic evolutionary search with automatic
//!   convergence, Algorithm 1 (§IV-B);
//! * [`tuner`] — the per-chain pipeline ([`McFuser`]) and structured
//!   [`TuneError`];
//! * [`engine`] — the [`FusionEngine`] session API: one configured
//!   object for tuning and end-to-end graph compilation with MBCI
//!   partitioning and fallback backends (§V-B);
//! * [`plan`] — the compile-time / run-time boundary: a
//!   [`CompiledModel`] freezes into an immutable [`ExecutablePlan`]
//!   (topological steps, name-keyed input bindings, buffer plan with
//!   last-use liveness) with structured [`ExecError`]s;
//! * [`runtime`] — the [`ModelRuntime`] serving registry: many plans,
//!   concurrent `infer` from `&self`, [`RuntimeStats`] with virtual
//!   p50/p95 latency;
//! * [`session`] — autoregressive decoder serving on top of the
//!   runtime: [`DecodeServing`] compiles per-bucket prefill/step plans
//!   and [`DecodeSession`] owns arena-pooled, capacity-bounded KV
//!   caches with `prefill()`/`step()` driving coalesced GEMV launches;
//! * [`cache`] — the content-addressed [`TuningCache`] behind the
//!   engine (in-memory and JSON-on-disk, with flush-on-shutdown error
//!   reporting);
//! * [`compiler`] — the [`OpCostModel`] fallback interface.
//!
//! Sessions are built once with explicit knobs, then reused:
//!
//! ```
//! use mcfuser_core::{CachePolicy, FusionEngine, SearchParams};
//! use mcfuser_ir::ChainSpec;
//! use mcfuser_sim::DeviceSpec;
//!
//! let engine = FusionEngine::builder(DeviceSpec::a100())
//!     .search_params(SearchParams::default())
//!     .cache(CachePolicy::InMemory)
//!     .parallelism(2)
//!     .build();
//!
//! let chain = ChainSpec::gemm_chain("demo", 1, 256, 128, 64, 64);
//! let tuned = engine.tune(&chain).unwrap();
//! assert!(tuned.profile.time > 0.0);
//!
//! // Identical requests are cache hits — no new measurements.
//! let again = engine.tune(&chain).unwrap();
//! assert_eq!(again.candidate, tuned.candidate);
//! assert_eq!(engine.stats().cache_hits, 1);
//! ```
//!
//! Serving splits from compilation: freeze a compiled graph into an
//! [`ExecutablePlan`] once, register it in a [`ModelRuntime`], and
//! serve concurrent requests by input name — see the [`runtime`]
//! module docs for the end-to-end example.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod compiler;
pub mod engine;
pub mod perf_model;
pub mod plan;
pub mod prune;
pub mod runtime;
pub mod scheduler;
pub mod search;
pub mod session;
pub mod space;
pub mod tuner;

pub use batch::BatchedPlan;
pub use cache::{
    CacheKey, CachedTuning, JsonDiskCache, MemoryCache, TuningCache, MEMORY_CACHE_CAPACITY,
};
pub use compiler::OpCostModel;
pub use engine::{
    CachePolicy, CompiledChain, CompiledModel, EngineBuilder, EngineStats, FusionEngine,
};
pub use mcfuser_sim::{
    verify_program, verify_widened, ExecBackend, InterpreterExec, KernelExecutor, VectorizedExec,
    VerifyError, VerifyReport,
};
pub use perf_model::{
    estimate, estimate_or_inf, estimate_or_inf_with, estimate_with, matmul_tile_intensity,
    ModelOptions, PerfEstimate,
};
pub use plan::{
    BufferPlan, ExecError, ExecutablePlan, InputBinding, InputSet, Outputs, RunOptions, Step,
    StepBreakdown, WeightStore,
};
pub use prune::{prune, rule2_ok, rule3_tiles, PruneStats};
pub use runtime::{ModelRuntime, PlanStats, RuntimeStats, ShutdownError, WEIGHT_CACHE_CAPACITY};
pub use scheduler::BatchPolicy;
pub use search::{heuristic_search, CandidateRef, MeasuredSet, SearchOutcome, SearchParams};
pub use session::{DecodeError, DecodeServing, DecodeSession, DecodeSpec};
pub use space::{
    space_fingerprint, CandidateSpace, Rule4Scan, SearchSpace, SpaceCache, FRONTIER_MIN_AXIS,
    FRONTIER_MIN_GRID, SPACE_CACHE_CAPACITY,
};
pub use tuner::{
    build_candidate_space, build_candidate_space_scanned, McFuser, Rule4Rejection, SpacePolicy,
    TuneError, TunedKernel,
};
