//! # mcfuser-core — the MCFuser framework
//!
//! The paper's primary contribution, reproduced end to end:
//!
//! * [`space`] — comprehensive search-space generation from tiling
//!   expressions (§III-A), and the lazy O(1)-indexed
//!   [`CandidateSpace`] the tuner explores — no candidate `Vec`, no
//!   materialization cap, every pruning survivor reachable by index;
//! * [`prune`] — pruning Rules 1–4 with the Fig. 7 waterfall (§III-C);
//!   Rule 4 is a parallel scan that becomes the space's survivor index,
//!   so [`PruneStats::after_rule4`](prune::PruneStats::after_rule4) is
//!   exact at any scale;
//! * [`perf_model`] — the analytical performance model, Eqs. 2–5 (§IV-A);
//! * [`search`] — the heuristic evolutionary search with automatic
//!   convergence, Algorithm 1 (§IV-B);
//! * [`tuner`] — the per-chain pipeline ([`McFuser`]) and structured
//!   [`TuneError`];
//! * [`engine`] — the [`FusionEngine`] session API: one configured
//!   object for tuning, end-to-end graph compilation with MBCI
//!   partitioning and fallback backends (§V-B), and execution;
//! * [`cache`] — the content-addressed [`TuningCache`] behind the
//!   engine (in-memory and JSON-on-disk);
//! * [`compiler`] — the [`OpCostModel`] fallback interface.
//!
//! Sessions are built once with explicit knobs, then reused:
//!
//! ```
//! use mcfuser_core::{CachePolicy, FusionEngine, SearchParams};
//! use mcfuser_ir::ChainSpec;
//! use mcfuser_sim::DeviceSpec;
//!
//! let engine = FusionEngine::builder(DeviceSpec::a100())
//!     .search_params(SearchParams::default())
//!     .cache(CachePolicy::InMemory)
//!     .parallelism(2)
//!     .build();
//!
//! let chain = ChainSpec::gemm_chain("demo", 1, 256, 128, 64, 64);
//! let tuned = engine.tune(&chain).unwrap();
//! assert!(tuned.profile.time > 0.0);
//!
//! // Identical requests are cache hits — no new measurements.
//! let again = engine.tune(&chain).unwrap();
//! assert_eq!(again.candidate, tuned.candidate);
//! assert_eq!(engine.stats().cache_hits, 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod compiler;
pub mod engine;
pub mod perf_model;
pub mod prune;
pub mod search;
pub mod space;
pub mod tuner;

pub use cache::{CacheKey, CachedTuning, JsonDiskCache, MemoryCache, TuningCache};
pub use compiler::OpCostModel;
pub use engine::{
    CachePolicy, CompiledChain, CompiledModel, EngineBuilder, EngineStats, FusionEngine,
};
pub use perf_model::{
    estimate, estimate_or_inf, estimate_or_inf_with, estimate_with, matmul_tile_intensity,
    ModelOptions, PerfEstimate,
};
pub use prune::{prune, rule2_ok, rule3_tiles, PruneStats};
pub use search::{heuristic_search, SearchOutcome, SearchParams};
pub use space::{CandidateSpace, SearchSpace};
pub use tuner::{
    build_candidate_space, McFuser, Rule4Rejection, SpacePolicy, TuneError, TunedKernel,
};
