//! # mcfuser-core — the MCFuser framework
//!
//! The paper's primary contribution, reproduced end to end:
//!
//! * [`space`] — comprehensive search-space generation from tiling
//!   expressions (§III-A);
//! * [`prune`] — pruning Rules 1–4 with the Fig. 7 waterfall (§III-C);
//! * [`perf_model`] — the analytical performance model, Eqs. 2–5 (§IV-A);
//! * [`search`] — the heuristic evolutionary search with automatic
//!   convergence, Algorithm 1 (§IV-B);
//! * [`tuner`] — the per-chain entry point ([`McFuser`]);
//! * [`compiler`] — end-to-end graph compilation with MBCI partitioning
//!   and fallback backends (§V-B): `MCFuser+Relay`, `MCFuser+Ansor`.
//!
//! ```
//! use mcfuser_core::McFuser;
//! use mcfuser_ir::ChainSpec;
//! use mcfuser_sim::DeviceSpec;
//!
//! let chain = ChainSpec::gemm_chain("demo", 1, 256, 128, 64, 64);
//! let tuned = McFuser::new().tune(&chain, &DeviceSpec::a100()).unwrap();
//! assert!(tuned.profile.time > 0.0);
//! ```

#![warn(missing_docs)]

pub mod compiler;
pub mod perf_model;
pub mod prune;
pub mod search;
pub mod space;
pub mod tuner;

pub use compiler::{compile_graph, execute_compiled, CompiledChain, CompiledModel, OpCostModel};
pub use perf_model::{
    estimate, estimate_or_inf, estimate_or_inf_with, estimate_with, matmul_tile_intensity,
    ModelOptions, PerfEstimate,
};
pub use prune::{prune, prune_with_cap, rule2_ok, rule3_tiles, PruneStats, PrunedSpace};
pub use search::{heuristic_search, SearchOutcome, SearchParams};
pub use space::SearchSpace;
pub use tuner::{McFuser, TuneError, TunedKernel};
