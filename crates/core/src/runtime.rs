//! The serving half of the API: [`ModelRuntime`].
//!
//! A runtime is a `Send + Sync` registry of [`ExecutablePlan`]s. Plans
//! are registered once (`register`) and served concurrently from plain
//! `&self` (`infer`) — there is no per-request locking around execution,
//! only around the plan lookup, the buffer-arena pool, and the stats
//! ledger. Requests are deterministic per `(model, seed)`: an 8-thread
//! stress run produces bit-identical outputs to a serial one.
//!
//! [`ModelRuntime::submit`] serves the same contract through the
//! continuous-batching admission queue (see [`crate::scheduler`]):
//! pending same-`(model, seed)` requests coalesce into one widened
//! fused launch (see [`crate::batch`]), with derived weights reused
//! across requests through a bounded per-`(model, seed)` LRU cache
//! ([`WEIGHT_CACHE_CAPACITY`]).
//!
//! The runtime tracks [`RuntimeStats`]: requests served, per-plan
//! p50/p95 latency on the *virtual* clock (the same clock the tuner
//! charges — see [`TuningClock`](mcfuser_sim::TuningClock)), and bytes
//! moved. On [`ModelRuntime::shutdown`] every attached [`TuningCache`]
//! is flushed, surfacing persistence failures that write-through puts
//! could only warn about.
//!
//! ```
//! use mcfuser_core::{FusionEngine, InputSet, ModelRuntime, RunOptions};
//! use mcfuser_core::compiler::OpCostModel;
//! # use mcfuser_ir::{Graph, GraphBuilder, NodeId};
//! # use mcfuser_sim::{DType, DeviceSpec, HostTensor};
//! # struct Flat;
//! # impl OpCostModel for Flat {
//! #     fn name(&self) -> &str { "flat" }
//! #     fn op_time(&self, _: &Graph, _: NodeId, _: &DeviceSpec) -> f64 { 1e-5 }
//! #     fn tuning_seconds(&self, _: &Graph, _: &[NodeId], _: &DeviceSpec) -> f64 { 0.0 }
//! # }
//! # let mut gb = GraphBuilder::new("two-layer", DType::F16);
//! # let x = gb.input("x", vec![64, 32]);
//! # let y = gb.linear("fc1", x, 64, false);
//! # let z = gb.linear("fc2", y, 32, false);
//! # let graph = gb.finish(vec![z]);
//! let engine = FusionEngine::builder(DeviceSpec::a100()).fallback(Flat).build();
//! let plan = engine.compile_plan(&graph).unwrap();
//!
//! let runtime = ModelRuntime::new();
//! runtime.register("two-layer", plan);
//! let inputs = InputSet::new().with("x", HostTensor::zeros(&[64, 32]));
//! let out = runtime.infer("two-layer", &inputs, RunOptions::seeded(1)).unwrap();
//! assert_eq!(out.primary().shape, vec![64, 32]);
//! assert_eq!(runtime.stats().requests, 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rand::prelude::*;
use rustc_hash::FxHashMap;

use mcfuser_sim::BufferArena;

use crate::batch::BatchedPlan;
use crate::cache::TuningCache;
use crate::plan::{ExecError, ExecutablePlan, InputSet, Outputs, RunOptions, WeightStore};
use crate::scheduler::Scheduler;

/// How many idle buffer arenas the runtime pools (roughly the number of
/// concurrently executing requests worth keeping warm).
const ARENA_POOL_LIMIT: usize = 32;

/// How many `(model, seed)` weight stores the runtime retains. Each
/// store holds every weight tensor of one plan at one seed, so the cap
/// bounds runtime memory under a rolling-seed workload.
pub const WEIGHT_CACHE_CAPACITY: usize = 32;

/// Latency samples retained per plan — the reservoir size. The cap
/// keeps a long-running runtime's memory (and the `stats()` sort)
/// bounded no matter how many requests it serves.
const LATENCY_SAMPLE_CAP: usize = 4096;

/// A fixed-size uniform sample of a latency stream (Vitter's
/// Algorithm R), deterministic per seed.
///
/// The previous implementation kept only the *first*
/// [`LATENCY_SAMPLE_CAP`] samples, so percentiles were permanently
/// biased toward cold-start requests: once the buffer filled, a
/// late-arriving slow request could never move p95. The reservoir
/// keeps every position of the stream equally likely to be retained —
/// after `n` pushes each sample survives with probability `cap / n` —
/// so the retained set stays a faithful picture of the whole serving
/// history. The RNG is seeded from the model name, so two runs of the
/// same request sequence report identical percentiles.
#[derive(Debug)]
struct LatencyReservoir {
    samples: Vec<f64>,
    /// Samples pushed so far (not capped).
    seen: u64,
    cap: usize,
    rng: StdRng,
}

impl LatencyReservoir {
    fn new(seed: u64) -> Self {
        Self::with_cap(LATENCY_SAMPLE_CAP, seed)
    }

    fn with_cap(cap: usize, seed: u64) -> Self {
        LatencyReservoir {
            samples: Vec::new(),
            seen: 0,
            cap: cap.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Record one latency sample (Algorithm R: the `n`-th sample enters
    /// the reservoir with probability `cap / n`, evicting a uniformly
    /// random resident).
    fn push(&mut self, latency: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(latency);
            return;
        }
        let j = self.rng.gen_range(0..self.seen);
        if (j as usize) < self.cap {
            self.samples[j as usize] = latency;
        }
    }

    /// The retained samples, ascending (for percentile extraction).
    fn sorted(&self) -> Vec<f64> {
        let mut s = self.samples.clone();
        s.sort_by(f64::total_cmp);
        s
    }
}

/// Deterministic reservoir seed for a model name (Fx hash of the name,
/// so a re-registered model replays identically).
fn reservoir_seed(model: &str) -> u64 {
    use std::hash::Hasher;
    let mut h = rustc_hash::FxHasher::default();
    h.write(model.as_bytes());
    h.finish()
}

/// Per-plan serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// The model name.
    pub model: String,
    /// Requests served successfully.
    pub requests: u64,
    /// Median per-request latency on the virtual clock (seconds).
    pub p50_latency: f64,
    /// 95th-percentile per-request latency on the virtual clock.
    pub p95_latency: f64,
    /// Median per-request **wall-clock** latency (seconds) — for queued
    /// requests this is enqueue-to-completion, so it includes batching
    /// delay. Wall time measures the host executing the simulator
    /// (i.e. the execution backend); virtual time measures the modeled
    /// device. Both matter: backend speedups only show up here.
    pub wall_p50_latency: f64,
    /// 95th-percentile per-request wall-clock latency (seconds).
    pub wall_p95_latency: f64,
    /// Total wall-clock seconds this plan's launches kept the host busy
    /// (once per batch, like [`PlanStats::virtual_busy`]), so
    /// `requests / wall_busy` is achieved wall throughput.
    pub wall_busy: f64,
    /// Total global-memory bytes moved by this plan's requests.
    pub bytes_moved: f64,
    /// Total virtual device seconds this plan's launches occupied — a
    /// width-`k` batch contributes its (amortized) span once, not `k`
    /// per-request times, so `requests / virtual_busy` is the plan's
    /// achieved throughput on the virtual clock.
    pub virtual_busy: f64,
    /// Fused-kernel steps per request of the registered plan — static
    /// structure from
    /// [`ExecutablePlan::step_breakdown`], zero if the plan has been
    /// deregistered since its last request.
    pub fused_steps: usize,
    /// Reference (interpreter) steps per request, weight
    /// materialization included.
    pub reference_steps: usize,
    /// Reference steps that are elementwise glue (Add, LayerNorm, …) —
    /// the traffic the prologue/epilogue stitcher exists to eliminate.
    pub reference_elementwise: usize,
    /// Per-request bytes moved by fused steps.
    pub fused_bytes_per_request: f64,
    /// Per-request bytes moved by reference steps.
    pub reference_bytes_per_request: f64,
}

/// A snapshot of everything the runtime has served.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuntimeStats {
    /// Requests served successfully, across all plans.
    pub requests: u64,
    /// Requests rejected with an [`ExecError`] (including admission
    /// rejections and expired deadlines).
    pub failed: u64,
    /// Requests currently admitted to the batching queue but not yet
    /// completed.
    pub queue_depth: u64,
    /// Submissions rejected with [`ExecError::Overloaded`].
    pub rejected: u64,
    /// Queued requests expired with [`ExecError::DeadlineExceeded`].
    pub expired: u64,
    /// Histogram of drained batch widths, `(width, launches)`,
    /// ascending by width.
    pub batch_sizes: Vec<(usize, u64)>,
    /// Weight tensors served from the runtime's weight cache.
    pub weight_cache_hits: u64,
    /// Weight tensors derived because the cache lacked them.
    pub weight_cache_misses: u64,
    /// `(model, seed)` weight stores evicted by the LRU bound.
    pub weight_cache_evictions: u64,
    /// Per-plan breakdown, sorted by model name.
    pub plans: Vec<PlanStats>,
}

impl RuntimeStats {
    /// The stats of one model, if it has served anything.
    pub fn plan(&self, model: &str) -> Option<&PlanStats> {
        self.plans.iter().find(|p| p.model == model)
    }
}

#[derive(Debug)]
struct PlanRecord {
    requests: u64,
    latencies: LatencyReservoir,
    /// Wall-clock latency samples, reservoir-sampled like the virtual
    /// ones (its own RNG stream so the two reservoirs stay independent).
    wall_latencies: LatencyReservoir,
    bytes: f64,
    busy: f64,
    wall_busy: f64,
}

impl PlanRecord {
    fn new(model: &str) -> Self {
        PlanRecord {
            requests: 0,
            latencies: LatencyReservoir::new(reservoir_seed(model)),
            wall_latencies: LatencyReservoir::new(reservoir_seed(model) ^ 1),
            bytes: 0.0,
            busy: 0.0,
            wall_busy: 0.0,
        }
    }
}

/// Flushing attached tuning caches at shutdown failed.
#[derive(Debug)]
pub struct ShutdownError {
    /// One entry per cache that could not persist.
    pub failures: Vec<String>,
    /// The final stats snapshot (shutdown still completes). Boxed so
    /// the `Err` variant stays small next to `Ok(RuntimeStats)`.
    pub stats: Box<RuntimeStats>,
}

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "runtime shutdown: {} tuning cache(s) failed to persist: {}",
            self.failures.len(),
            self.failures.join("; ")
        )
    }
}

impl std::error::Error for ShutdownError {}

struct WeightCacheInner {
    map: FxHashMap<(String, u64), (Arc<WeightStore>, u64)>,
    tick: u64,
}

/// LRU-bounded cache of per-`(model, seed)` [`WeightStore`]s: weight
/// tensors are derived once per plan/seed pair and shared across every
/// request (serial and batched) instead of re-materialized per request.
/// Hit/miss counters are `Arc`-shared with the stores themselves, so
/// evicting a store never loses its counts.
pub(crate) struct WeightCache {
    inner: Mutex<WeightCacheInner>,
    capacity: usize,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    evictions: AtomicU64,
}

impl Default for WeightCache {
    fn default() -> Self {
        WeightCache::with_capacity(WEIGHT_CACHE_CAPACITY)
    }
}

impl WeightCache {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        WeightCache {
            inner: Mutex::new(WeightCacheInner {
                map: FxHashMap::default(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            evictions: AtomicU64::new(0),
        }
    }

    /// The store for `(model, seed)`, created on first use; touching a
    /// store refreshes its LRU position, and inserting past capacity
    /// evicts the least-recently-used other entry.
    pub(crate) fn store(&self, model: &str, seed: u64) -> Arc<WeightStore> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((store, last)) = inner.map.get_mut(&(model.to_string(), seed)) {
            *last = tick;
            return store.clone();
        }
        let store = Arc::new(WeightStore::with_counters(
            self.hits.clone(),
            self.misses.clone(),
        ));
        inner
            .map
            .insert((model.to_string(), seed), (store.clone(), tick));
        if inner.map.len() > self.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(_, (_, t))| *t != tick)
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        store
    }

    /// Drop every seed's store of `model` (the plan changed — its
    /// weights no longer describe what will be served).
    fn invalidate_model(&self, model: &str) {
        self.inner.lock().map.retain(|(m, _), _| m != model);
    }

    fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

/// A thread-safe registry serving many [`ExecutablePlan`]s concurrently.
///
/// All methods take `&self`; share the runtime behind an [`Arc`] across
/// request threads. See the [module docs](self) for an end-to-end
/// example.
#[derive(Default)]
pub struct ModelRuntime {
    plans: RwLock<FxHashMap<String, Arc<ExecutablePlan>>>,
    records: Mutex<FxHashMap<String, PlanRecord>>,
    failed: Mutex<u64>,
    arenas: Mutex<Vec<BufferArena>>,
    caches: Mutex<Vec<Arc<dyn TuningCache>>>,
    /// Per-model widened-plan wrappers, built lazily and invalidated on
    /// (de)registration.
    batched: Mutex<FxHashMap<String, Arc<BatchedPlan>>>,
    /// Per-`(model, seed)` weight stores shared by `infer` and `submit`.
    pub(crate) weights: WeightCache,
    /// The continuous-batching admission queue behind `submit`.
    pub(crate) sched: Scheduler,
}

impl std::fmt::Debug for ModelRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRuntime")
            .field("models", &self.models())
            .field("requests", &self.stats().requests)
            .field("attached_caches", &self.caches.lock().len())
            .finish()
    }
}

impl ModelRuntime {
    /// An empty runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty runtime whose [`ModelRuntime::submit`] queue follows
    /// `policy` instead of
    /// [`BatchPolicy::default`](crate::BatchPolicy::default).
    pub fn with_batch_policy(policy: crate::BatchPolicy) -> Self {
        ModelRuntime {
            sched: Scheduler::with_policy(policy),
            ..ModelRuntime::default()
        }
    }

    /// Register a plan under a serving name (replacing any previous plan
    /// of that name) and return the shared handle.
    pub fn register(&self, name: impl Into<String>, plan: ExecutablePlan) -> Arc<ExecutablePlan> {
        let plan = Arc::new(plan);
        self.register_arc(name, plan.clone());
        plan
    }

    /// Register an already-shared plan. Registering a name always
    /// starts its serving stats fresh — whether it replaces a live plan
    /// or follows a [`ModelRuntime::deregister`], the retained latency
    /// samples and byte counts described the previous plan.
    pub fn register_arc(&self, name: impl Into<String>, plan: Arc<ExecutablePlan>) {
        let name = name.into();
        self.plans.write().insert(name.clone(), plan);
        self.records.lock().remove(&name);
        self.batched.lock().remove(&name);
        self.weights.invalidate_model(&name);
    }

    /// Remove a plan. Returns it if it was registered.
    pub fn deregister(&self, name: &str) -> Option<Arc<ExecutablePlan>> {
        let plan = self.plans.write().remove(name);
        self.batched.lock().remove(name);
        self.weights.invalidate_model(name);
        plan
    }

    /// Look up a registered plan.
    pub fn plan(&self, name: &str) -> Option<Arc<ExecutablePlan>> {
        self.plans.read().get(name).cloned()
    }

    /// The registered model names, sorted.
    pub fn models(&self) -> Vec<String> {
        let mut v: Vec<String> = self.plans.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Attach a tuning cache to be flushed at [`ModelRuntime::shutdown`]
    /// (typically the serving engine's cache, via
    /// [`FusionEngine::cache_handle`](crate::FusionEngine::cache_handle)).
    pub fn attach_cache(&self, cache: Arc<dyn TuningCache>) {
        self.caches.lock().push(cache);
    }

    /// Serve one request against a registered plan. Concurrent calls
    /// from any number of threads are safe and deterministic per
    /// `(model, seed)`.
    pub fn infer(
        &self,
        model: &str,
        inputs: &InputSet,
        opts: RunOptions,
    ) -> Result<Outputs, ExecError> {
        let Some(plan) = self.plan(model) else {
            *self.failed.lock() += 1;
            return Err(ExecError::UnknownModel {
                name: model.to_string(),
            });
        };
        let store = self.weights.store(model, opts.seed);
        let mut arena = self.arena();
        let started = std::time::Instant::now();
        let result = plan.execute_cached(inputs, opts, &mut arena, Some(&store));
        let wall = started.elapsed().as_secs_f64();
        self.recycle_arena(arena);
        match &result {
            Ok(_) => {
                self.record_success(
                    model,
                    plan.virtual_time_per_request(),
                    wall,
                    plan.bytes_per_request(),
                );
                self.record_busy(model, plan.virtual_time_per_request(), wall);
            }
            Err(_) => self.count_failure(),
        }
        result
    }

    /// The batched wrapper for a registered model, built on first use
    /// and cached until the name is (de)registered.
    pub(crate) fn batched_plan(&self, model: &str) -> Option<Arc<BatchedPlan>> {
        if let Some(b) = self.batched.lock().get(model) {
            return Some(b.clone());
        }
        let plan = self.plan(model)?;
        let b = Arc::new(BatchedPlan::new(plan));
        self.batched.lock().insert(model.to_string(), b.clone());
        Some(b)
    }

    /// Pop a pooled buffer arena (or a fresh one).
    pub(crate) fn arena(&self) -> BufferArena {
        self.arenas.lock().pop().unwrap_or_default()
    }

    /// Return an arena to the pool, unless the pool is already warm.
    pub(crate) fn recycle_arena(&self, arena: BufferArena) {
        let mut pool = self.arenas.lock();
        if pool.len() < ARENA_POOL_LIMIT {
            pool.push(arena);
        }
    }

    /// Ledger one successfully served request: `latency` on the virtual
    /// clock, `wall` on the host's (enqueue-to-completion for queued
    /// requests).
    pub(crate) fn record_success(&self, model: &str, latency: f64, wall: f64, bytes: f64) {
        let mut records = self.records.lock();
        let rec = records
            .entry(model.to_string())
            .or_insert_with(|| PlanRecord::new(model));
        rec.requests += 1;
        rec.latencies.push(latency);
        rec.wall_latencies.push(wall);
        rec.bytes += bytes;
    }

    /// Ledger device seconds occupied by a launch (once per batch, not
    /// once per request): `span` virtual, `wall` host seconds.
    pub(crate) fn record_busy(&self, model: &str, span: f64, wall: f64) {
        let mut records = self.records.lock();
        let rec = records
            .entry(model.to_string())
            .or_insert_with(|| PlanRecord::new(model));
        rec.busy += span;
        rec.wall_busy += wall;
    }

    /// Ledger one failed request.
    pub(crate) fn count_failure(&self) {
        *self.failed.lock() += 1;
    }

    /// Snapshot the serving counters.
    pub fn stats(&self) -> RuntimeStats {
        let records = self.records.lock();
        let registered = self.plans.read();
        let mut plans: Vec<PlanStats> = records
            .iter()
            .map(|(model, rec)| {
                let sorted = rec.latencies.sorted();
                let wall_sorted = rec.wall_latencies.sorted();
                // Static per-request step structure of the plan as
                // registered right now (deregistered → all zero).
                let breakdown = registered
                    .get(model)
                    .map(|p| p.step_breakdown())
                    .unwrap_or_default();
                PlanStats {
                    model: model.clone(),
                    requests: rec.requests,
                    p50_latency: percentile(&sorted, 0.50),
                    p95_latency: percentile(&sorted, 0.95),
                    wall_p50_latency: percentile(&wall_sorted, 0.50),
                    wall_p95_latency: percentile(&wall_sorted, 0.95),
                    wall_busy: rec.wall_busy,
                    bytes_moved: rec.bytes,
                    virtual_busy: rec.busy,
                    fused_steps: breakdown.fused_steps,
                    reference_steps: breakdown.reference_steps,
                    reference_elementwise: breakdown.reference_elementwise,
                    fused_bytes_per_request: breakdown.fused_bytes,
                    reference_bytes_per_request: breakdown.reference_bytes,
                }
            })
            .collect();
        plans.sort_by(|a, b| a.model.cmp(&b.model));
        let (queue_depth, rejected, expired, batch_sizes) = self.sched.snapshot();
        let (weight_cache_hits, weight_cache_misses, weight_cache_evictions) =
            self.weights.counters();
        RuntimeStats {
            requests: plans.iter().map(|p| p.requests).sum(),
            failed: *self.failed.lock(),
            queue_depth,
            rejected,
            expired,
            batch_sizes,
            weight_cache_hits,
            weight_cache_misses,
            weight_cache_evictions,
            plans,
        }
    }

    /// Shut the runtime down: flush every attached tuning cache and
    /// return the final stats. Persistence failures — which write-through
    /// puts can only warn about — are reported here as a
    /// [`ShutdownError`] carrying the same final snapshot. Takes `&self`
    /// so a runtime shared behind an [`Arc`] can be drained too; the
    /// runtime stays usable afterwards.
    pub fn shutdown(&self) -> Result<RuntimeStats, ShutdownError> {
        let stats = self.stats();
        let mut failures = Vec::new();
        for cache in self.caches.lock().iter() {
            if let Err(e) = cache.flush() {
                failures.push(e.to_string());
            }
        }
        if failures.is_empty() {
            Ok(stats)
        } else {
            Err(ShutdownError {
                failures,
                stats: Box::new(stats),
            })
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.5), 3.0);
        assert_eq!(percentile(&s, 0.95), 5.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn unknown_model_is_a_structured_error_and_counted() {
        let rt = ModelRuntime::new();
        let err = rt
            .infer("nope", &InputSet::new(), RunOptions::default())
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::UnknownModel {
                name: "nope".into()
            }
        );
        assert_eq!(rt.stats().failed, 1);
        assert_eq!(rt.stats().requests, 0);
    }

    #[test]
    fn runtime_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelRuntime>();
        assert_send_sync::<ExecutablePlan>();
    }

    #[test]
    fn weight_cache_bounds_stores_and_counts_evictions() {
        let cache = WeightCache::with_capacity(2);
        let a = cache.store("m", 0);
        let _b = cache.store("m", 1);
        // Touch (m, 0) so (m, 1) is the LRU victim on overflow.
        let a2 = cache.store("m", 0);
        assert!(Arc::ptr_eq(&a, &a2), "touching must return the same store");
        let _c = cache.store("n", 0);
        let (_, _, evictions) = cache.counters();
        assert_eq!(evictions, 1);
        assert_eq!(cache.len(), 2);
        // The touched store survived; the evicted one is rebuilt fresh.
        assert!(Arc::ptr_eq(&a, &cache.store("m", 0)));
        let rebuilt = cache.store("m", 1);
        assert!(rebuilt.is_empty(), "evicted store must come back empty");
    }

    #[test]
    fn invalidating_a_model_drops_every_seed() {
        let cache = WeightCache::with_capacity(8);
        cache.store("m", 0);
        cache.store("m", 1);
        cache.store("n", 0);
        cache.invalidate_model("m");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn late_slow_requests_move_p95() {
        // Regression for the first-CAP truncation: a reservoir that has
        // already seen `cap` fast cold-start samples must still let a
        // late-arriving slow phase move the tail percentile. With
        // truncation, p95 stayed at the fast latency forever.
        let cap = 64;
        let mut res = LatencyReservoir::with_cap(cap, reservoir_seed("m"));
        for _ in 0..cap {
            res.push(1e-4); // fast cold-start phase fills the buffer
        }
        let before = percentile(&res.sorted(), 0.95);
        assert_eq!(before, 1e-4);
        // A long slow phase: 10× the reservoir size at 10× the latency.
        for _ in 0..cap * 10 {
            res.push(1e-3);
        }
        let after = percentile(&res.sorted(), 0.95);
        assert_eq!(after, 1e-3, "p95 must reflect the dominant late slow phase");
        // The median too: ~10/11 of the stream is slow.
        assert_eq!(percentile(&res.sorted(), 0.50), 1e-3);
        // Memory stays bounded at the cap.
        assert_eq!(res.samples.len(), cap);
        assert_eq!(res.seen, (cap * 11) as u64);
    }

    #[test]
    fn reservoir_is_deterministic_and_roughly_uniform() {
        // Same seed + same stream → identical retained samples (the
        // serving stats of a replayed request log are reproducible).
        let stream: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let run = |seed: u64| {
            let mut r = LatencyReservoir::with_cap(128, seed);
            for &x in &stream {
                r.push(x);
            }
            r.sorted()
        };
        assert_eq!(run(7), run(7));
        // Uniformity smoke check: the retained sample of a 0..5000 ramp
        // has roughly half its mass below the midpoint (Algorithm R
        // keeps each position with equal probability; truncation would
        // put *all* 128 samples below 128).
        let kept = run(reservoir_seed("bert"));
        let below_mid = kept.iter().filter(|&&x| x < 2500.0).count();
        assert!(
            (32..=96).contains(&below_mid),
            "suspiciously non-uniform reservoir: {below_mid}/128 below midpoint"
        );
        assert!(
            kept.iter().any(|&x| x >= 4000.0),
            "the tail of the stream must be reachable"
        );
    }

    #[test]
    fn reregistering_a_model_resets_and_reseeds_its_stats() {
        use crate::compiler::OpCostModel;
        use mcfuser_ir::{Graph, GraphBuilder, NodeId};
        use mcfuser_sim::{DType, DeviceSpec, HostTensor};

        struct Flat;
        impl OpCostModel for Flat {
            fn name(&self) -> &str {
                "flat"
            }
            fn op_time(&self, _: &Graph, _: NodeId, _: &DeviceSpec) -> f64 {
                1e-5
            }
            fn tuning_seconds(&self, _: &Graph, _: &[NodeId], _: &DeviceSpec) -> f64 {
                0.0
            }
        }

        let mut gb = GraphBuilder::new("m", DType::F16);
        let x = gb.input("x", vec![64, 32]);
        let y = gb.linear("fc1", x, 64, false);
        let g = gb.finish(vec![y]);
        let engine = crate::FusionEngine::builder(DeviceSpec::a100())
            .fallback(Flat)
            .build();
        let plan = engine.compile_plan(&g).unwrap();

        let rt = ModelRuntime::new();
        let plan = rt.register("m", plan);
        let inputs = InputSet::new().with("x", HostTensor::zeros(&[64, 32]));
        for s in 0..3 {
            rt.infer("m", &inputs, RunOptions::seeded(s)).unwrap();
        }
        assert_eq!(rt.stats().plan("m").unwrap().requests, 3);

        // Re-registering the name (rolling restart) drops the record:
        // retained latency samples and counts described the old epoch.
        rt.register_arc("m", plan);
        assert!(
            rt.stats().plan("m").is_none(),
            "re-registering must reset the model's serving stats"
        );
        rt.infer("m", &inputs, RunOptions::default()).unwrap();
        assert_eq!(rt.stats().plan("m").unwrap().requests, 1);

        // The fresh record's reservoir reseeds from the model name, so
        // a replayed request log reports identical percentiles.
        assert_eq!(reservoir_seed("m"), reservoir_seed("m"));
        assert_ne!(reservoir_seed("m"), reservoir_seed("n"));
    }
}
