//! The serving half of the API: [`ModelRuntime`].
//!
//! A runtime is a `Send + Sync` registry of [`ExecutablePlan`]s. Plans
//! are registered once (`register`) and served concurrently from plain
//! `&self` (`infer`) — there is no per-request locking around execution,
//! only around the plan lookup, the buffer-arena pool, and the stats
//! ledger. Requests are deterministic per `(model, seed)`: an 8-thread
//! stress run produces bit-identical outputs to a serial one.
//!
//! The runtime tracks [`RuntimeStats`]: requests served, per-plan
//! p50/p95 latency on the *virtual* clock (the same clock the tuner
//! charges — see [`TuningClock`](mcfuser_sim::TuningClock)), and bytes
//! moved. On [`ModelRuntime::shutdown`] every attached [`TuningCache`]
//! is flushed, surfacing persistence failures that write-through puts
//! could only warn about.
//!
//! ```
//! use mcfuser_core::{FusionEngine, InputSet, ModelRuntime, RunOptions};
//! use mcfuser_core::compiler::OpCostModel;
//! # use mcfuser_ir::{Graph, GraphBuilder, NodeId};
//! # use mcfuser_sim::{DType, DeviceSpec, HostTensor};
//! # struct Flat;
//! # impl OpCostModel for Flat {
//! #     fn name(&self) -> &str { "flat" }
//! #     fn op_time(&self, _: &Graph, _: NodeId, _: &DeviceSpec) -> f64 { 1e-5 }
//! #     fn tuning_seconds(&self, _: &Graph, _: &[NodeId], _: &DeviceSpec) -> f64 { 0.0 }
//! # }
//! # let mut gb = GraphBuilder::new("two-layer", DType::F16);
//! # let x = gb.input("x", vec![64, 32]);
//! # let y = gb.linear("fc1", x, 64, false);
//! # let z = gb.linear("fc2", y, 32, false);
//! # let graph = gb.finish(vec![z]);
//! let engine = FusionEngine::builder(DeviceSpec::a100()).fallback(Flat).build();
//! let plan = engine.compile_plan(&graph).unwrap();
//!
//! let runtime = ModelRuntime::new();
//! runtime.register("two-layer", plan);
//! let inputs = InputSet::new().with("x", HostTensor::zeros(&[64, 32]));
//! let out = runtime.infer("two-layer", &inputs, RunOptions::seeded(1)).unwrap();
//! assert_eq!(out.primary().shape, vec![64, 32]);
//! assert_eq!(runtime.stats().requests, 1);
//! ```

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rustc_hash::FxHashMap;

use mcfuser_sim::BufferArena;

use crate::cache::TuningCache;
use crate::plan::{ExecError, ExecutablePlan, InputSet, Outputs, RunOptions};

/// How many idle buffer arenas the runtime pools (roughly the number of
/// concurrently executing requests worth keeping warm).
const ARENA_POOL_LIMIT: usize = 32;

/// Latency samples retained per plan. A plan's per-request virtual
/// latency is frozen at plan time, so the first samples describe the
/// distribution exactly; the cap keeps a long-running runtime's memory
/// (and the `stats()` sort) bounded no matter how many requests it
/// serves. (If latency ever becomes input-dependent, replace the
/// truncation with reservoir sampling.)
const LATENCY_SAMPLE_CAP: usize = 4096;

/// Per-plan serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// The model name.
    pub model: String,
    /// Requests served successfully.
    pub requests: u64,
    /// Median per-request latency on the virtual clock (seconds).
    pub p50_latency: f64,
    /// 95th-percentile per-request latency on the virtual clock.
    pub p95_latency: f64,
    /// Total global-memory bytes moved by this plan's requests.
    pub bytes_moved: f64,
}

/// A snapshot of everything the runtime has served.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuntimeStats {
    /// Requests served successfully, across all plans.
    pub requests: u64,
    /// Requests rejected with an [`ExecError`].
    pub failed: u64,
    /// Per-plan breakdown, sorted by model name.
    pub plans: Vec<PlanStats>,
}

impl RuntimeStats {
    /// The stats of one model, if it has served anything.
    pub fn plan(&self, model: &str) -> Option<&PlanStats> {
        self.plans.iter().find(|p| p.model == model)
    }
}

#[derive(Debug, Default)]
struct PlanRecord {
    requests: u64,
    latencies: Vec<f64>,
    bytes: f64,
}

/// Flushing attached tuning caches at shutdown failed.
#[derive(Debug)]
pub struct ShutdownError {
    /// One entry per cache that could not persist.
    pub failures: Vec<String>,
    /// The final stats snapshot (shutdown still completes).
    pub stats: RuntimeStats,
}

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "runtime shutdown: {} tuning cache(s) failed to persist: {}",
            self.failures.len(),
            self.failures.join("; ")
        )
    }
}

impl std::error::Error for ShutdownError {}

/// A thread-safe registry serving many [`ExecutablePlan`]s concurrently.
///
/// All methods take `&self`; share the runtime behind an [`Arc`] across
/// request threads. See the [module docs](self) for an end-to-end
/// example.
#[derive(Default)]
pub struct ModelRuntime {
    plans: RwLock<FxHashMap<String, Arc<ExecutablePlan>>>,
    records: Mutex<FxHashMap<String, PlanRecord>>,
    failed: Mutex<u64>,
    arenas: Mutex<Vec<BufferArena>>,
    caches: Mutex<Vec<Arc<dyn TuningCache>>>,
}

impl std::fmt::Debug for ModelRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRuntime")
            .field("models", &self.models())
            .field("requests", &self.stats().requests)
            .field("attached_caches", &self.caches.lock().len())
            .finish()
    }
}

impl ModelRuntime {
    /// An empty runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a plan under a serving name (replacing any previous plan
    /// of that name) and return the shared handle.
    pub fn register(&self, name: impl Into<String>, plan: ExecutablePlan) -> Arc<ExecutablePlan> {
        let plan = Arc::new(plan);
        self.register_arc(name, plan.clone());
        plan
    }

    /// Register an already-shared plan. Registering a name always
    /// starts its serving stats fresh — whether it replaces a live plan
    /// or follows a [`ModelRuntime::deregister`], the retained latency
    /// samples and byte counts described the previous plan.
    pub fn register_arc(&self, name: impl Into<String>, plan: Arc<ExecutablePlan>) {
        let name = name.into();
        self.plans.write().insert(name.clone(), plan);
        self.records.lock().remove(&name);
    }

    /// Remove a plan. Returns it if it was registered.
    pub fn deregister(&self, name: &str) -> Option<Arc<ExecutablePlan>> {
        self.plans.write().remove(name)
    }

    /// Look up a registered plan.
    pub fn plan(&self, name: &str) -> Option<Arc<ExecutablePlan>> {
        self.plans.read().get(name).cloned()
    }

    /// The registered model names, sorted.
    pub fn models(&self) -> Vec<String> {
        let mut v: Vec<String> = self.plans.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Attach a tuning cache to be flushed at [`ModelRuntime::shutdown`]
    /// (typically the serving engine's cache, via
    /// [`FusionEngine::cache_handle`](crate::FusionEngine::cache_handle)).
    pub fn attach_cache(&self, cache: Arc<dyn TuningCache>) {
        self.caches.lock().push(cache);
    }

    /// Serve one request against a registered plan. Concurrent calls
    /// from any number of threads are safe and deterministic per
    /// `(model, seed)`.
    pub fn infer(
        &self,
        model: &str,
        inputs: &InputSet,
        opts: RunOptions,
    ) -> Result<Outputs, ExecError> {
        let Some(plan) = self.plan(model) else {
            *self.failed.lock() += 1;
            return Err(ExecError::UnknownModel {
                name: model.to_string(),
            });
        };
        let mut arena = self.arenas.lock().pop().unwrap_or_default();
        let result = plan.execute_in(inputs, opts, &mut arena);
        {
            let mut pool = self.arenas.lock();
            if pool.len() < ARENA_POOL_LIMIT {
                pool.push(arena);
            }
        }
        match &result {
            Ok(_) => {
                let mut records = self.records.lock();
                let rec = records.entry(model.to_string()).or_default();
                rec.requests += 1;
                if rec.latencies.len() < LATENCY_SAMPLE_CAP {
                    rec.latencies.push(plan.virtual_time_per_request());
                }
                rec.bytes += plan.bytes_per_request();
            }
            Err(_) => *self.failed.lock() += 1,
        }
        result
    }

    /// Snapshot the serving counters.
    pub fn stats(&self) -> RuntimeStats {
        let records = self.records.lock();
        let mut plans: Vec<PlanStats> = records
            .iter()
            .map(|(model, rec)| {
                let mut sorted = rec.latencies.clone();
                sorted.sort_by(f64::total_cmp);
                PlanStats {
                    model: model.clone(),
                    requests: rec.requests,
                    p50_latency: percentile(&sorted, 0.50),
                    p95_latency: percentile(&sorted, 0.95),
                    bytes_moved: rec.bytes,
                }
            })
            .collect();
        plans.sort_by(|a, b| a.model.cmp(&b.model));
        RuntimeStats {
            requests: plans.iter().map(|p| p.requests).sum(),
            failed: *self.failed.lock(),
            plans,
        }
    }

    /// Shut the runtime down: flush every attached tuning cache and
    /// return the final stats. Persistence failures — which write-through
    /// puts can only warn about — are reported here as a
    /// [`ShutdownError`] carrying the same final snapshot. Takes `&self`
    /// so a runtime shared behind an [`Arc`] can be drained too; the
    /// runtime stays usable afterwards.
    pub fn shutdown(&self) -> Result<RuntimeStats, ShutdownError> {
        let stats = self.stats();
        let mut failures = Vec::new();
        for cache in self.caches.lock().iter() {
            if let Err(e) = cache.flush() {
                failures.push(e.to_string());
            }
        }
        if failures.is_empty() {
            Ok(stats)
        } else {
            Err(ShutdownError { failures, stats })
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.5), 3.0);
        assert_eq!(percentile(&s, 0.95), 5.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn unknown_model_is_a_structured_error_and_counted() {
        let rt = ModelRuntime::new();
        let err = rt
            .infer("nope", &InputSet::new(), RunOptions::default())
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::UnknownModel {
                name: "nope".into()
            }
        );
        assert_eq!(rt.stats().failed, 1);
        assert_eq!(rt.stats().requests, 0);
    }

    #[test]
    fn runtime_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelRuntime>();
        assert_send_sync::<ExecutablePlan>();
    }
}
