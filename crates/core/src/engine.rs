//! The `FusionEngine` session API — one configured entry point for
//! everything the paper's pipeline does (§III–§V): per-chain tuning,
//! end-to-end graph compilation with MBCI partitioning, fallback pricing
//! of the non-fused remainder, and freezing compiled models into
//! serving plans ([`FusionEngine::compile_plan`] →
//! [`ModelRuntime`](crate::ModelRuntime)).
//!
//! Previously these lived behind three disjoint entry points
//! (`McFuser::tune`, a free `compile_graph`, `Backend::run_chain`) with no
//! shared configuration or reuse. The engine consolidates them the way
//! FusionStitching and Blockbuster turn a fusion algorithm into a
//! reusable compiler service:
//!
//! * built once via [`EngineBuilder`] with explicit knobs — target
//!   [`DeviceSpec`], [`SearchParams`], fallback [`OpCostModel`],
//!   [`CachePolicy`], [`SpacePolicy`], and a parallelism degree;
//! * owns a content-addressed [`TuningCache`] keyed by chain content
//!   (dtype included), input-transpose layout, device, and search
//!   configuration;
//! * tunes independent chains in parallel with deterministic results:
//!   each chain runs on its own virtual clock (merged afterwards), so
//!   the winning candidates and every aggregate are identical at any
//!   parallelism degree.
//!
//! ```
//! use mcfuser_core::FusionEngine;
//! use mcfuser_ir::ChainSpec;
//! use mcfuser_sim::DeviceSpec;
//!
//! let engine = FusionEngine::builder(DeviceSpec::a100()).build();
//! let chain = ChainSpec::gemm_chain("demo", 1, 256, 128, 64, 64);
//! let tuned = engine.tune(&chain).unwrap();
//! assert!(tuned.profile.time > 0.0);
//! // The second request is served from the session cache.
//! let again = engine.tune(&chain).unwrap();
//! assert_eq!(again.candidate, tuned.candidate);
//! assert_eq!(engine.stats().cache_hits, 1);
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHashSet};

use mcfuser_ir::{partition_with, ChainSpec, Graph, NodeId, PartitionOptions};
use mcfuser_sim::{measure_noisy, DeviceSpec, ExecBackend, TuningClock, TuningReport};
use mcfuser_tile::{lower, Candidate, LoweringOptions, TilingExpr};

use crate::cache::{CacheKey, CachedTuning, JsonDiskCache, MemoryCache, TuningCache};
use crate::compiler::OpCostModel;
use crate::plan::ExecutablePlan;
use crate::search::SearchParams;
use crate::space::{space_fingerprint, CandidateSpace, SpaceCache};
use crate::tuner::{build_candidate_space, McFuser, SpacePolicy, TuneError, TunedKernel};

/// One fused sub-graph in a compiled model.
#[derive(Debug, Clone)]
pub struct CompiledChain {
    /// The extracted chain.
    pub chain: ChainSpec,
    /// Tuned kernel.
    pub tuned: TunedKernel,
    /// Graph nodes the kernel replaces.
    pub nodes: Vec<NodeId>,
    /// Chain data inputs as graph nodes.
    pub data_inputs: Vec<NodeId>,
    /// The graph node whose value the kernel produces.
    pub output: NodeId,
    /// Inputs stored transposed in the graph relative to chain layout.
    pub transposed_inputs: Vec<bool>,
    /// Whether this chain spent no new measurements in this compile —
    /// served from the engine cache, or deduplicated against an
    /// identical chain tuned earlier in the same batch.
    pub cache_hit: bool,
}

/// A compiled end-to-end model.
#[derive(Debug)]
pub struct CompiledModel {
    /// Model name.
    pub name: String,
    /// Fused chains with their kernels.
    pub chains: Vec<CompiledChain>,
    /// Per-op times of the non-fused remainder.
    pub rest_times: Vec<(NodeId, f64)>,
    /// Fallback backend used for the remainder.
    pub fallback: String,
    /// Total inference time (seconds) = fused kernels + remainder.
    pub total_time: f64,
    /// Time spent in fused chains only.
    pub chain_time: f64,
    /// Virtual tuning time this compile actually spent (cache hits cost
    /// nothing) plus the fallback's preparation cost.
    pub tuning_seconds: f64,
    /// Structural fingerprint of the source graph, captured at compile
    /// time. [`CompiledModel::plan`] verifies the graph it is handed
    /// matches — a same-named but structurally different graph is
    /// rejected instead of silently producing wrong outputs.
    pub graph_fingerprint: u64,
    /// The device the model was tuned for. Carried into
    /// [`ExecutablePlan`] so the serving layer
    /// can price widened batched launches on the same timing model.
    pub device: DeviceSpec,
    /// Stitched chains whose fused kernel could not be tuned and that
    /// degraded to their plain twin, with the prologue/epilogue glue
    /// returned to the fallback remainder. Outputs are unchanged by a
    /// demotion — only the step structure and traffic differ.
    pub stitch_demotions: u64,
    /// Execution backend stamped into plans built from this model
    /// (engine-level default; see [`EngineBuilder::exec_backend`]).
    pub exec_backend: ExecBackend,
}

/// Structural fingerprint of a graph (nodes, shapes, ops, outputs,
/// dtype — everything `Debug` renders), via the deterministic Fx hash.
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    use std::hash::Hasher;
    let mut h = rustc_hash::FxHasher::default();
    h.write(format!("{graph:?}").as_bytes());
    h.finish()
}

/// Where the engine keeps tuning results.
#[derive(Debug, Clone, Default)]
pub enum CachePolicy {
    /// No reuse across requests (identical chains inside one `compile`
    /// still share a single tuning via in-flight deduplication).
    Disabled,
    /// In-memory, for the lifetime of the engine.
    #[default]
    InMemory,
    /// Write-through JSON file: a fresh engine (or process) pointed at
    /// the same path reuses every schedule tuned before it started.
    DiskJson(PathBuf),
}

/// Counters describing what a session has done so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tuning requests answered from the cache.
    pub cache_hits: u64,
    /// Tuning requests that ran the full search pipeline.
    pub cache_misses: u64,
    /// Graphs compiled.
    pub graphs_compiled: u64,
    /// Write-through cache persistence attempts that failed (disk
    /// caches only; the entries stayed live in memory). A non-zero count
    /// means schedules will be re-tuned by the next process — call
    /// [`TuningCache::flush`] (e.g. via
    /// [`ModelRuntime::shutdown`](crate::ModelRuntime::shutdown)) to get
    /// the failure as a `Result`.
    pub cache_persist_errors: u64,
    /// Candidate spaces built from scratch (each one Rule-4 scan).
    /// With the space cache enabled this counts *distinct space
    /// fingerprints*, not tuning tasks: N same-shaped chains cost one
    /// build.
    pub space_builds: u64,
    /// Tuning tasks whose candidate space was served from the engine's
    /// [`SpaceCache`] (always 0 with the cache disabled, or when the
    /// tuning cache answered first — a schedule hit never builds a
    /// space at all).
    pub space_cache_hits: u64,
    /// Candidate spaces evicted from the LRU-bounded [`SpaceCache`].
    /// Eviction is safe — spaces rebuild deterministically — but a
    /// non-zero count under a steady workload means the bound is
    /// thrashing and should grow.
    pub space_evictions: u64,
    /// Tuned schedules evicted from the LRU-bounded in-memory
    /// [`TuningCache`]. Like spaces, evicted
    /// schedules re-tune deterministically; the counter sizes the bound.
    pub tuning_cache_evictions: u64,
    /// `Ranked` block-decode lookups served from a thread-sharded decode
    /// cache without a re-filter, summed over the [`SpaceCache`]'s
    /// resident spaces. Hits ≫ misses is the healthy regime; a depressed
    /// ratio under concurrency means threads are contending for (and
    /// evicting) each other's shard slots.
    pub decode_cache_hits: u64,
    /// `Ranked` block re-filters (decode-cache misses), summed over the
    /// [`SpaceCache`]'s resident spaces.
    pub decode_cache_misses: u64,
    /// Lowered programs that passed the static verifier (fresh tuning
    /// winners and cache rehydrations both count; see
    /// `mcfuser_sim::verify`).
    pub programs_verified: u64,
    /// Lowered programs the static verifier rejected. Each reject
    /// either surfaced as [`TuneError::Verify`] or — for a cached
    /// schedule — forced a fresh re-tune. A non-zero count under a
    /// production workload means a lowering or cache-poisoning bug was
    /// caught before the kernel could be served.
    pub verify_rejects: u64,
}

/// Configures and constructs a [`FusionEngine`].
pub struct EngineBuilder {
    device: DeviceSpec,
    params: SearchParams,
    policy: SpacePolicy,
    fallback: Option<Arc<dyn OpCostModel + Send + Sync>>,
    cache: CachePolicy,
    custom_cache: Option<Box<dyn TuningCache>>,
    parallelism: usize,
    space_caching: bool,
    stitching: bool,
    exec_backend: ExecBackend,
    verify: bool,
}

impl EngineBuilder {
    /// Start configuring an engine for a target device.
    pub fn new(device: DeviceSpec) -> Self {
        EngineBuilder {
            device,
            params: SearchParams::default(),
            policy: SpacePolicy::default(),
            fallback: None,
            cache: CachePolicy::default(),
            custom_cache: None,
            parallelism: 1,
            space_caching: true,
            stitching: true,
            exec_backend: ExecBackend::default(),
            verify: true,
        }
    }

    /// Whether tuned programs are gated through the static verifier
    /// (symbolic bounds, init/def-use, inter-block race analysis;
    /// default: on). Every fresh tuning winner is verified before it is
    /// cached, and every cache rehydration is re-verified before it is
    /// served — a reject surfaces as [`TuneError::Verify`] (fresh) or a
    /// forced re-tune (cached). Disable only to measure the gate's own
    /// cost; correctness-critical paths should leave it on.
    pub fn verify(mut self, enabled: bool) -> Self {
        self.verify = enabled;
        self
    }

    /// Which execution backend plans compiled by this engine run fused
    /// kernels on (default: [`ExecBackend::Vectorized`]). Pin
    /// [`ExecBackend::Interpreter`] for oracle sessions; individual
    /// requests can still override via
    /// [`RunOptions::with_backend`](crate::RunOptions::with_backend).
    pub fn exec_backend(mut self, backend: ExecBackend) -> Self {
        self.exec_backend = backend;
        self
    }

    /// Algorithm 1 parameters (population, top-n, convergence ε, …).
    pub fn search_params(mut self, params: SearchParams) -> Self {
        self.params = params;
        self
    }

    /// Search-space construction policy (full space by default; the
    /// restricted variants drive the ablation study).
    pub fn space_policy(mut self, policy: SpacePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Backend pricing the operators MCFuser does not fuse. Required for
    /// [`FusionEngine::compile`]; chain-only sessions can omit it.
    pub fn fallback(mut self, fallback: impl OpCostModel + Send + 'static) -> Self {
        self.fallback = Some(Arc::new(fallback));
        self
    }

    /// Like [`EngineBuilder::fallback`], for an already-shared backend.
    pub fn fallback_arc(mut self, fallback: Arc<dyn OpCostModel + Send + Sync>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Where tuning results live (default: in-memory for the engine's
    /// lifetime).
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self.custom_cache = None;
        self
    }

    /// Bring your own [`TuningCache`] implementation.
    pub fn cache_store(mut self, cache: Box<dyn TuningCache>) -> Self {
        self.custom_cache = Some(cache);
        self
    }

    /// Whether the engine shares built candidate spaces across tuning
    /// tasks (default: on). Spaces are content-addressed by
    /// [`space_fingerprint`] — everything construction depends on
    /// except the chain's name — so N same-shaped chains (every BERT
    /// layer) pay for one Rule-4 scan instead of N. Results are
    /// bit-identical either way; disable only to measure the scan cost
    /// itself (the `tune_smoke` bench does).
    pub fn space_cache(mut self, enabled: bool) -> Self {
        self.space_caching = enabled;
        self
    }

    /// Whether the partitioner stitches adjacent elementwise glue
    /// (LayerNorm prologues, residual-Add/LayerNorm epilogues) into the
    /// fused chains (default: on). Disabling it extracts the *same*
    /// chains but emits each as its plain twin with the glue priced by
    /// the fallback — the baseline a stitched plan is bit-identical to.
    pub fn stitching(mut self, enabled: bool) -> Self {
        self.stitching = enabled;
        self
    }

    /// Number of worker threads for independent chains (1 = serial;
    /// results are bit-identical at any degree). 0 selects the host's
    /// available parallelism.
    pub fn parallelism(mut self, degree: usize) -> Self {
        self.parallelism = if degree == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            degree
        };
        self
    }

    /// Construct the engine.
    pub fn build(self) -> FusionEngine {
        let cache: Option<Arc<dyn TuningCache>> = match (self.custom_cache, &self.cache) {
            (Some(c), _) => Some(Arc::from(c)),
            (None, CachePolicy::Disabled) => None,
            (None, CachePolicy::InMemory) => Some(Arc::new(MemoryCache::new())),
            (None, CachePolicy::DiskJson(path)) => Some(Arc::new(JsonDiskCache::open(path))),
        };
        FusionEngine {
            device: self.device,
            tuner: McFuser {
                params: self.params,
            },
            policy: self.policy,
            fallback: self.fallback,
            cache,
            spaces: self.space_caching.then(SpaceCache::new),
            space_builds: AtomicU64::new(0),
            stitching: self.stitching,
            parallelism: self.parallelism.max(1),
            clock: TuningClock::new(),
            stats: Mutex::new(EngineStats::default()),
            exec_backend: self.exec_backend,
            verify: self.verify,
        }
    }
}

/// A configured fusion session: tuning, graph compilation, and execution
/// through one object. All methods take `&self`; the engine is `Sync`
/// and safe to share across request threads.
pub struct FusionEngine {
    device: DeviceSpec,
    tuner: McFuser,
    policy: SpacePolicy,
    fallback: Option<Arc<dyn OpCostModel + Send + Sync>>,
    cache: Option<Arc<dyn TuningCache>>,
    /// Built candidate spaces, shared across same-shaped tuning tasks
    /// (`None` when disabled via [`EngineBuilder::space_cache`]).
    spaces: Option<SpaceCache>,
    /// Fresh space constructions, cache or not (the Rule-4 scan probe).
    space_builds: AtomicU64,
    /// Whether compilation stitches prologue/epilogue glue into chains.
    stitching: bool,
    parallelism: usize,
    clock: TuningClock,
    stats: Mutex<EngineStats>,
    /// Backend stamped into every [`CompiledModel`] / [`ExecutablePlan`]
    /// this engine produces.
    exec_backend: ExecBackend,
    /// Whether tuned programs pass through the static verifier before
    /// being cached or served (see [`EngineBuilder::verify`]).
    verify: bool,
}

impl std::fmt::Debug for FusionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusionEngine")
            .field("device", &self.device.name)
            .field("parallelism", &self.parallelism)
            .field("cached_entries", &self.cache.as_ref().map(|c| c.len()))
            .field("cached_spaces", &self.spaces.as_ref().map(|s| s.len()))
            .field("fallback", &self.fallback.as_ref().map(|b| b.name()))
            .finish()
    }
}

impl FusionEngine {
    /// Start building an engine for a target device.
    pub fn builder(device: DeviceSpec) -> EngineBuilder {
        EngineBuilder::new(device)
    }

    /// The target device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The session's search parameters.
    pub fn params(&self) -> &SearchParams {
        &self.tuner.params
    }

    /// Session counters (cache hits/misses, graphs compiled, cache
    /// persistence failures, space builds and space-cache hits).
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats.lock().clone();
        stats.cache_persist_errors = self.cache.as_ref().map(|c| c.persist_errors()).unwrap_or(0);
        stats.space_builds = self.space_builds.load(Ordering::Relaxed);
        stats.space_cache_hits = self.spaces.as_ref().map(|s| s.hits()).unwrap_or(0);
        stats.space_evictions = self.spaces.as_ref().map(|s| s.evictions()).unwrap_or(0);
        stats.tuning_cache_evictions = self.cache.as_ref().map(|c| c.evictions()).unwrap_or(0);
        let (decode_hits, decode_misses) = self
            .spaces
            .as_ref()
            .map(|s| s.decode_counters())
            .unwrap_or((0, 0));
        stats.decode_cache_hits = decode_hits;
        stats.decode_cache_misses = decode_misses;
        stats
    }

    /// The session's tuning cache, shareable with a serving layer —
    /// [`ModelRuntime::attach_cache`](crate::ModelRuntime::attach_cache)
    /// flushes it at shutdown so persistence failures become a
    /// `Result` instead of a warning.
    pub fn cache_handle(&self) -> Option<Arc<dyn TuningCache>> {
        self.cache.clone()
    }

    /// Aggregate virtual tuning cost of everything this session tuned
    /// fresh (cache hits charge nothing).
    pub fn session_report(&self) -> TuningReport {
        self.clock.report()
    }

    /// Tune one chain in its natural layout.
    pub fn tune(&self, chain: &ChainSpec) -> Result<TunedKernel, TuneError> {
        self.tune_with_layout(chain, &[])
    }

    /// Tune one chain whose inputs the surrounding graph stores in the
    /// given transpose layout (one flag per input; empty = natural).
    /// Layout is part of the cache identity: two chains differing only
    /// in how their inputs are stored never share a schedule.
    pub fn tune_with_layout(
        &self,
        chain: &ChainSpec,
        transposed_inputs: &[bool],
    ) -> Result<TunedKernel, TuneError> {
        let (tuned, fresh) = self.tune_entry(chain, transposed_inputs)?;
        if let Some(report) = &fresh {
            self.clock.absorb(report);
        }
        Ok(tuned)
    }

    /// Tune many independent chains, in parallel up to the configured
    /// degree. Results come back in input order and are identical to a
    /// serial run (duplicates are deduplicated up front, and fresh
    /// tuning costs are folded into the session clock in input order,
    /// so aggregates are bit-identical at any parallelism degree).
    pub fn tune_many(&self, chains: &[ChainSpec]) -> Vec<Result<TunedKernel, TuneError>> {
        let tasks: Vec<(&ChainSpec, &[bool])> =
            chains.iter().map(|c| (c, &[] as &[bool])).collect();
        self.tune_tasks(&tasks)
            .0
            .into_iter()
            .map(|r| r.map(|(t, _)| t))
            .collect()
    }

    /// Deduplicate tasks by cache key, tune each unique task once (in
    /// parallel), absorb fresh costs deterministically, and fan results
    /// back out in input order. The bool in each result marks cache
    /// hits; the second return value is the total virtual seconds of
    /// fresh tuning (each unique task counted once).
    #[allow(clippy::type_complexity)]
    fn tune_tasks(
        &self,
        tasks: &[(&ChainSpec, &[bool])],
    ) -> (Vec<Result<(TunedKernel, bool), TuneError>>, f64) {
        let mut unique: Vec<(&ChainSpec, &[bool])> = Vec::new();
        let mut task_of: Vec<usize> = Vec::with_capacity(tasks.len());
        let mut index_of: FxHashMap<String, usize> = FxHashMap::default();
        for &(chain, layout) in tasks {
            let key = self.key_for(chain, layout).canonical();
            let idx = *index_of.entry(key).or_insert_with(|| {
                unique.push((chain, layout));
                unique.len() - 1
            });
            task_of.push(idx);
        }

        let results = self.run_jobs(unique.len(), |i| {
            let (chain, layout) = unique[i];
            self.tune_entry(chain, layout)
        });

        // Fold fresh tuning costs into the session clock in job order —
        // doing this on the worker threads would make the f64 sums
        // depend on completion order.
        let mut fresh_seconds = 0.0;
        for r in &results {
            if let Ok((_, Some(report))) = r {
                self.clock.absorb(report);
                fresh_seconds += report.virtual_seconds;
            }
        }

        // Fan out in input order. Only the first occurrence of a fresh
        // tuning is "paid for"; duplicates of it (and all true cache
        // hits) spent nothing and are flagged accordingly.
        let mut paid = vec![false; results.len()];
        let fanned = task_of
            .into_iter()
            .map(|idx| match &results[idx] {
                Ok((t, fresh)) => {
                    let free = fresh.is_none() || paid[idx];
                    paid[idx] = true;
                    Ok((t.clone(), free))
                }
                Err(e) => Err(e.clone()),
            })
            .collect();
        (fanned, fresh_seconds)
    }

    /// Compile a graph end to end with the engine's configured fallback:
    /// partition into MBCI sub-graphs, tune each (in parallel, with
    /// cache reuse), price the remainder.
    pub fn compile(&self, graph: &Graph) -> Result<CompiledModel, TuneError> {
        let fallback = self
            .fallback
            .clone()
            .ok_or_else(|| TuneError::MissingFallback {
                graph: graph.name.clone(),
            })?;
        self.compile_with_fallback(graph, fallback.as_ref())
    }

    /// Compile with an explicit fallback, overriding (or standing in
    /// for) the configured one. Useful for comparing fallback backends
    /// while sharing one engine's tuning cache.
    pub fn compile_with_fallback(
        &self,
        graph: &Graph,
        fallback: &dyn OpCostModel,
    ) -> Result<CompiledModel, TuneError> {
        let part = partition_with(
            graph,
            &self.device,
            PartitionOptions {
                stitch: self.stitching,
            },
        );

        // Identical tuning tasks (e.g. the attention of every layer) are
        // deduplicated by tune_tasks and tuned once, then fanned back out
        // in partition order.
        let tasks: Vec<(&ChainSpec, &[bool])> = part
            .chains
            .iter()
            .map(|fc| (&fc.chain, fc.transposed_inputs.as_slice()))
            .collect();
        let (results, mut fresh_tuning_seconds) = self.tune_tasks(&tasks);

        let mut chains = Vec::with_capacity(part.chains.len());
        let mut chain_time = 0.0;
        let mut stitch_demotions = 0u64;
        let mut rest_nodes: Vec<NodeId> = part.rest.clone();
        for (fc, result) in part.chains.iter().zip(results) {
            let (src, t, cache_hit) = match result {
                Ok((t, hit)) => (fc, t, hit),
                Err(e) => {
                    // A stitched chain whose fused kernel cannot be
                    // tuned degrades to its plain twin: the core chain
                    // still fuses, the glue it had claimed returns to
                    // the fallback remainder, and outputs are unchanged.
                    let Some(twin) = fc.unstitched.as_deref() else {
                        return Err(e);
                    };
                    let (twin_results, twin_seconds) =
                        self.tune_tasks(&[(&twin.chain, twin.transposed_inputs.as_slice())]);
                    fresh_tuning_seconds += twin_seconds;
                    let (t, hit) = twin_results.into_iter().next().expect("one twin task")?;
                    stitch_demotions += 1;
                    rest_nodes.extend(fc.stitched_glue());
                    (twin, t, hit)
                }
            };
            chain_time += t.profile.time;
            chains.push(CompiledChain {
                chain: src.chain.clone(),
                tuned: t,
                nodes: src.nodes.clone(),
                data_inputs: src.data_inputs.clone(),
                output: src.output,
                transposed_inputs: src.transposed_inputs.clone(),
                cache_hit,
            });
        }
        rest_nodes.sort_unstable();

        // Glue whose producer was fused into a chain cannot fold into a
        // producer epilogue — that kernel no longer launches standalone —
        // so it is priced as its own launch.
        let fused: FxHashSet<NodeId> = chains
            .iter()
            .flat_map(|c| c.nodes.iter().copied())
            .collect();
        let rest_times: Vec<(NodeId, f64)> = rest_nodes
            .iter()
            .map(|&n| {
                let producer_fused = graph
                    .node(n)
                    .inputs
                    .first()
                    .is_some_and(|p| fused.contains(p));
                let t = if producer_fused {
                    fallback.op_time_standalone(graph, n, &self.device)
                } else {
                    fallback.op_time(graph, n, &self.device)
                };
                (n, t)
            })
            .collect();
        let rest_total: f64 = rest_times.iter().map(|(_, t)| t).sum();
        let tuning_seconds =
            fresh_tuning_seconds + fallback.tuning_seconds(graph, &rest_nodes, &self.device);
        self.stats.lock().graphs_compiled += 1;
        Ok(CompiledModel {
            name: graph.name.clone(),
            chains,
            rest_times,
            fallback: fallback.name().to_string(),
            total_time: chain_time + rest_total,
            chain_time,
            tuning_seconds,
            graph_fingerprint: graph_fingerprint(graph),
            device: self.device.clone(),
            stitch_demotions,
            exec_backend: self.exec_backend,
        })
    }

    /// Compile a graph and freeze the result straight into a serving
    /// [`ExecutablePlan`] — the usual path when the compiled model's
    /// tuning provenance is not needed:
    /// `engine.compile_plan(&g)? → runtime.register(name, plan)`.
    pub fn compile_plan(&self, graph: &Graph) -> Result<ExecutablePlan, TuneError> {
        let model = self.compile(graph)?;
        model.plan(graph).map_err(|e| TuneError::Plan {
            graph: graph.name.clone(),
            detail: e.to_string(),
        })
    }

    fn key_for(&self, chain: &ChainSpec, transposed_inputs: &[bool]) -> CacheKey {
        CacheKey::new(
            chain,
            transposed_inputs,
            &self.device,
            &self.tuner.params,
            &self.policy,
        )
    }

    /// Tune one task, consulting the cache. Returns the kernel plus the
    /// fresh-tuning report (`None` on a cache hit).
    fn tune_entry(
        &self,
        chain: &ChainSpec,
        transposed_inputs: &[bool],
    ) -> Result<(TunedKernel, Option<TuningReport>), TuneError> {
        let key = self.key_for(chain, transposed_inputs);
        if let Some(cache) = &self.cache {
            if let Some(entry) = cache.get(&key) {
                if let Some(t) = self.rehydrate(chain, &entry) {
                    self.stats.lock().cache_hits += 1;
                    return Ok((t, None));
                }
            }
        }
        let local = TuningClock::new();
        let space = self.space_for(chain);
        let tuned = self
            .tuner
            .tune_in_space(chain, &self.device, &local, &space)?;
        // Static gate: the winner must survive symbolic verification
        // before it is cached or returned. A reject here is a lowering
        // bug surfacing as a structured error instead of a miscompile —
        // callers demote (stitched chains fall back to their plain twin
        // in `compile`) rather than serve the kernel.
        if self.verify {
            if let Err(e) = mcfuser_sim::verify::verify_program(&tuned.kernel.program) {
                self.stats.lock().verify_rejects += 1;
                return Err(TuneError::Verify {
                    chain: chain.name.clone(),
                    device: self.device.name.clone(),
                    detail: e.to_string(),
                });
            }
            self.stats.lock().programs_verified += 1;
        }
        // The local report is returned to the caller, which absorbs it
        // into the session clock in deterministic (input) order — never
        // here on a worker thread, where completion order would make the
        // f64 sums scheduling-dependent.
        let report = local.report();
        self.stats.lock().cache_misses += 1;
        if let Some(cache) = &self.cache {
            cache.put(&key, CachedTuning::from_tuned(&tuned));
        }
        Ok((tuned, Some(report)))
    }

    /// The candidate space for a chain — shared through the engine's
    /// [`SpaceCache`] (content-addressed, so every same-shaped chain and
    /// every layout variant of one reuses a single Rule-4 scan), or
    /// built fresh when space caching is disabled. Only reached on
    /// tuning-cache misses: a schedule hit rehydrates without a space.
    fn space_for(&self, chain: &ChainSpec) -> Arc<CandidateSpace> {
        let build = || {
            self.space_builds.fetch_add(1, Ordering::Relaxed);
            build_candidate_space(chain, &self.device, &self.policy)
        };
        match &self.spaces {
            Some(cache) => {
                cache.get_or_build(space_fingerprint(chain, &self.device, &self.policy), build)
            }
            None => Arc::new(build()),
        }
    }

    /// Rebuild a [`TunedKernel`] from a cached schedule: parse the
    /// expression, re-lower (deterministic, virtually free), re-derive
    /// the profile. No measurements are charged — that is the point of
    /// the cache. Returns `None` if the entry does not fit the chain
    /// (treated as a miss).
    fn rehydrate(&self, chain: &ChainSpec, entry: &CachedTuning) -> Option<TunedKernel> {
        let expr = TilingExpr::parse(&entry.expr, chain)?;
        if entry.tiles.len() != chain.num_axes() {
            return None;
        }
        let candidate = Candidate::new(expr, entry.tiles.clone());
        let opts = if self.tuner.params.dead_loop_elimination {
            LoweringOptions::for_device(&self.device)
        } else {
            LoweringOptions::for_device(&self.device).without_dead_loop_elimination()
        };
        let kernel = lower(chain, &candidate, &opts).ok()?;
        if kernel.smem_bytes > self.device.smem_per_block {
            return None;
        }
        // Re-verify rehydrated programs: a stale or hand-edited cache
        // entry that re-lowers into something unsound is treated as a
        // miss (forcing a fresh, itself-verified tune), never served.
        if self.verify {
            if mcfuser_sim::verify::verify_program(&kernel.program).is_err() {
                self.stats.lock().verify_rejects += 1;
                return None;
            }
            self.stats.lock().programs_verified += 1;
        }
        let profile = measure_noisy(&kernel.program, &self.device, self.tuner.params.seed);
        Some(TunedKernel {
            chain: chain.clone(),
            candidate,
            kernel,
            profile,
            tuning: entry.tuning.clone(),
            prune_stats: entry.prune_stats.clone(),
            rounds: entry.rounds,
            measured: entry.measured,
        })
    }

    /// Run `n` independent jobs, in parallel up to the configured
    /// degree, collecting results in job order (deterministic for
    /// deterministic jobs regardless of scheduling).
    fn run_jobs<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.parallelism.min(n);
        if workers <= 1 {
            return (0..n).map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let result = job(i);
                    *slots[i].lock() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("every job slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_ir::GraphBuilder;
    use mcfuser_sim::DType;

    struct FlatCost;
    impl OpCostModel for FlatCost {
        fn name(&self) -> &str {
            "flat"
        }
        fn op_time(&self, _g: &Graph, _n: NodeId, _d: &DeviceSpec) -> f64 {
            10e-6
        }
        fn tuning_seconds(&self, _g: &Graph, nodes: &[NodeId], _d: &DeviceSpec) -> f64 {
            nodes.len() as f64 * 0.5
        }
    }

    fn tiny_attention_graph() -> Graph {
        let mut gb = GraphBuilder::new("attn", DType::F16);
        let q = gb.input("q", vec![2, 64, 32]);
        let k = gb.input("k", vec![2, 64, 32]);
        let v = gb.input("v", vec![2, 64, 32]);
        let s = gb.batch_matmul("qk", q, k, true);
        let p = gb.softmax("sm", s, 1.0 / (32f32).sqrt());
        let o = gb.batch_matmul("pv", p, v, false);
        let ln = gb.layer_norm("ln", o);
        gb.finish(vec![ln])
    }

    #[test]
    fn engine_tunes_and_caches() {
        let engine = FusionEngine::builder(DeviceSpec::a100()).build();
        let chain = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
        let first = engine.tune(&chain).unwrap();
        let measurements_after_first = engine.session_report().measurements;
        assert!(measurements_after_first > 0);
        let second = engine.tune(&chain).unwrap();
        assert_eq!(first.candidate, second.candidate);
        assert_eq!(first.profile.time, second.profile.time);
        // The hit spent nothing on the session clock.
        assert_eq!(
            engine.session_report().measurements,
            measurements_after_first
        );
        assert_eq!(
            engine.stats(),
            EngineStats {
                cache_hits: 1,
                cache_misses: 1,
                graphs_compiled: 0,
                cache_persist_errors: 0,
                space_builds: 1,
                space_cache_hits: 0,
                // Both the fresh winner and its rehydrated cache hit
                // pass the static gate.
                programs_verified: 2,
                ..EngineStats::default()
            }
        );
    }

    #[test]
    fn compile_fuses_attention_and_prices_rest() {
        let engine = FusionEngine::builder(DeviceSpec::a100())
            .fallback(FlatCost)
            .build();
        let model = engine.compile(&tiny_attention_graph()).unwrap();
        assert_eq!(model.chains.len(), 1);
        assert_eq!(model.rest_times.len(), 1); // the layer norm
        assert!(model.total_time > model.chain_time);
        assert!(model.tuning_seconds > 0.0);
        assert!(!model.chains[0].cache_hit);
    }

    #[test]
    fn compile_without_fallback_is_a_structured_error() {
        let engine = FusionEngine::builder(DeviceSpec::a100()).build();
        let err = engine.compile(&tiny_attention_graph()).unwrap_err();
        assert_eq!(
            err,
            TuneError::MissingFallback {
                graph: "attn".into()
            }
        );
    }

    #[test]
    fn second_compile_is_served_from_cache() {
        let engine = FusionEngine::builder(DeviceSpec::a100())
            .fallback(FlatCost)
            .build();
        let g = tiny_attention_graph();
        let first = engine.compile(&g).unwrap();
        let second = engine.compile(&g).unwrap();
        assert_eq!(first.total_time, second.total_time);
        assert!(second.chains[0].cache_hit);
        // Only the fallback's preparation cost remains.
        assert!(second.tuning_seconds < first.tuning_seconds);
        assert_eq!(engine.stats().cache_misses, 1);
    }

    #[test]
    fn identical_chains_dedup_even_with_cache_disabled() {
        let mut gb = GraphBuilder::new("two", DType::F16);
        let mut outs = Vec::new();
        for l in 0..2 {
            let q = gb.input(format!("q{l}"), vec![2, 64, 32]);
            let k = gb.input(format!("k{l}"), vec![2, 64, 32]);
            let v = gb.input(format!("v{l}"), vec![2, 64, 32]);
            let s = gb.batch_matmul(&format!("qk{l}"), q, k, true);
            let p = gb.softmax(&format!("sm{l}"), s, 1.0);
            let o = gb.batch_matmul(&format!("pv{l}"), p, v, false);
            outs.push(o);
        }
        let g = gb.finish(outs);
        let engine = FusionEngine::builder(DeviceSpec::a100())
            .fallback(FlatCost)
            .cache(CachePolicy::Disabled)
            .build();
        let model = engine.compile(&g).unwrap();
        assert_eq!(model.chains.len(), 2);
        assert_eq!(
            model.chains[0].tuned.candidate,
            model.chains[1].tuned.candidate
        );
        // One tuning session for two identical chains; the duplicate is
        // flagged as costing nothing.
        assert_eq!(engine.stats().cache_misses, 1);
        assert!(!model.chains[0].cache_hit);
        assert!(model.chains[1].cache_hit);
    }

    /// Transformer FFN block with affine LayerNorms on both sides — the
    /// shape the stitching passes fold into one kernel.
    fn ffn_block_graph(m: u64, d: u64, f: u64) -> Graph {
        let mut gb = GraphBuilder::new("blk", DType::F16);
        let proj = gb.input("proj", vec![m, d]);
        let x = gb.input("x", vec![m, d]);
        let res1 = gb.add("res1", proj, x);
        let ln1 = gb.layer_norm_affine("ln1", res1);
        let up = gb.linear("up", ln1, f, true);
        let act = gb.gelu("act", up);
        let down = gb.linear("down", act, d, true);
        let res2 = gb.add("res2", down, ln1);
        let ln2 = gb.layer_norm_affine("ln2", res2);
        gb.finish(vec![ln2])
    }

    #[test]
    fn ffn_block_compiles_to_one_stitched_kernel() {
        let engine = FusionEngine::builder(DeviceSpec::a100())
            .fallback(FlatCost)
            .build();
        let model = engine.compile(&ffn_block_graph(128, 64, 128)).unwrap();
        assert_eq!(model.chains.len(), 1);
        let c = &model.chains[0].chain;
        assert!(c.prologue.is_some() && c.stitch_epilogue.is_some());
        assert!(model.rest_times.is_empty(), "{:?}", model.rest_times);
        assert_eq!(model.stitch_demotions, 0);
        assert_eq!(model.total_time, model.chain_time);
    }

    #[test]
    fn stitching_disabled_compiles_the_twin_with_glue_in_rest() {
        let g = ffn_block_graph(128, 64, 128);
        let engine = FusionEngine::builder(DeviceSpec::a100())
            .fallback(FlatCost)
            .stitching(false)
            .build();
        let model = engine.compile(&g).unwrap();
        assert_eq!(model.chains.len(), 1);
        let c = &model.chains[0].chain;
        assert!(c.prologue.is_none() && c.stitch_epilogue.is_none());
        // res1, ln1, res2, ln2 priced by the fallback.
        assert_eq!(model.rest_times.len(), 4);
        assert_eq!(model.stitch_demotions, 0);
    }

    #[test]
    fn unstitchable_tail_degrades_to_the_plain_twin() {
        // Tail LayerNorm width 72: tile options are multiples of 16, so
        // no candidate can hold the full row in one tile and every
        // stitched lowering fails. The compile must not error — the
        // chain degrades to its plain twin and the glue returns to the
        // fallback remainder.
        let mut gb = GraphBuilder::new("degrade", DType::F16);
        let x = gb.input("x", vec![512, 64]);
        let y = gb.input("y", vec![512, 72]);
        let h = gb.linear("fc1", x, 256, false);
        let o = gb.linear("fc2", h, 72, false);
        let r = gb.add("res", o, y);
        let ln = gb.layer_norm_affine("ln2", r);
        let g = gb.finish(vec![ln]);

        let engine = FusionEngine::builder(DeviceSpec::a100())
            .fallback(FlatCost)
            .build();
        let model = engine.compile(&g).unwrap();
        assert_eq!(model.stitch_demotions, 1);
        assert_eq!(model.chains.len(), 1);
        let c = &model.chains[0].chain;
        assert!(c.prologue.is_none() && c.stitch_epilogue.is_none());
        // The demoted glue (res, ln2) is priced by the fallback again.
        assert_eq!(model.rest_times.len(), 2);
        // The degraded model still freezes into a runnable plan.
        let plan = model.plan(&g).unwrap();
        assert_eq!(plan.fused_kernels(), 1);
        // res + ln2 run on the interpreter (weight materialization
        // steps are counted separately as non-elementwise).
        assert_eq!(plan.step_breakdown().reference_elementwise, 2);
    }

    #[test]
    fn parallel_compile_matches_serial() {
        let g = tiny_attention_graph();
        let run = |threads: usize| {
            let engine = FusionEngine::builder(DeviceSpec::a100())
                .fallback(FlatCost)
                .parallelism(threads)
                .build();
            let m = engine.compile(&g).unwrap();
            (
                m.total_time,
                m.tuning_seconds,
                m.chains[0].tuned.candidate.clone(),
            )
        };
        assert_eq!(run(1), run(8));
    }
}
