//! Widened-batch execution: coalesce `k` same-plan requests into one
//! fused launch per step.
//!
//! The MCFuser pipeline tunes a fused kernel for a *single* request
//! shape. Under a serving load the same plan is executed over and over,
//! and every launch re-pays the per-kernel launch overhead and
//! re-streams the (identical) weight tiles from DRAM. A
//! [`BatchedPlan`] removes both costs without re-tuning anything:
//!
//! * **Widening.** Every lowered program's leading grid dimension is
//!   the chain batch (`VarRef::Grid(0)`, see `lower::lower`), and every
//!   per-request tensor access carries a leading `{Grid(0), tile: 1}`
//!   index. Multiplying `grid[0]` by `k` and the leading extent of
//!   every per-request buffer by `k` turns the program into one launch
//!   that processes `k` stacked requests; request `r` owns batch slots
//!   `[r·B, (r+1)·B)`, so staging and scatter are contiguous copies.
//! * **Weight sharing.** Buffers fed by [`Op::Weight`] nodes keep
//!   their shape; their leading batch index is rewritten to
//!   [`VarRef::Zero`] so all `k` requests read the *same* tiles. This
//!   is mandatory, not an optimization: the interpreter zero-fills
//!   out-of-bounds loads, so a widened grid over an unwidened weight
//!   buffer would silently corrupt results. The rewrite also lets the
//!   timing model charge the weight's DRAM bytes once per batch
//!   instead of once per request — the amortization that makes
//!   batching pay.
//!
//! Widened programs are re-[`validate`](TileProgram::validate)d and
//! re-[`measure`]d per width, and cached per `(plan, width)`.
//! Programs that widening cannot prove safe (a `Temp` buffer, a
//! non-weight input without a leading batch index, a batch-replicated
//! weight) fall back to serial execution — correctness never depends
//! on widening succeeding.
//!
//! Outputs are **bit-identical** to serial execution by construction:
//! blocks of the functional interpreter execute independently, so a
//! widened launch performs exactly the per-request arithmetic in the
//! same order within each request's slots.

use std::sync::Arc;

use parking_lot::Mutex;
use rustc_hash::FxHashMap;

use mcfuser_ir::Op;
use mcfuser_sim::{
    measure, BlockStmt, BufferArena, BufferRole, HostTensor, TensorStorage, TileAccess, TileIndex,
    TileProgram, VarRef,
};

use crate::plan::{
    ExecError, ExecutablePlan, InputSet, Outputs, RunOptions, Step, Value, WeightStore,
};

/// One fused step widened to a fixed batch width.
#[derive(Debug)]
pub(crate) struct WidenedStep {
    /// The widened, re-validated tile program.
    program: Arc<TileProgram>,
    /// Per data input: `true` if the buffer is shared across requests
    /// (weights/biases, staged once), `false` if per-request (staged at
    /// `r * slot_elems`).
    shared: Vec<bool>,
    /// Per data input: elements one request (or the shared tensor)
    /// occupies in the widened buffer.
    slot_elems: Vec<usize>,
    /// Elements of one request's output slice.
    out_elems: usize,
    /// Measured virtual time of the widened launch.
    time: f64,
    /// Global-memory bytes of the widened launch.
    bytes: f64,
}

/// A whole plan widened to one batch width: the widened fused steps
/// plus the batch's virtual span.
#[derive(Debug)]
pub(crate) struct WidenedPlan {
    /// Widened fused steps, keyed by step index.
    fused: FxHashMap<usize, WidenedStep>,
    /// Virtual time one drained batch of this width occupies on the
    /// device: widened fused launches once, reference steps `k` times.
    pub(crate) virtual_time: f64,
    /// Global-memory bytes the batch moves.
    pub(crate) bytes: f64,
}

/// Batched execution wrapper around an [`ExecutablePlan`]: widens the
/// plan's fused programs per batch width (cached), executes `k`
/// requests in one launch per step, and scatters each request's output
/// slice back out.
///
/// Built once per registered model by the runtime's admission queue
/// (see [`ModelRuntime::submit`](crate::ModelRuntime::submit)); also
/// usable directly for ad-hoc batched execution.
#[derive(Debug)]
pub struct BatchedPlan {
    plan: Arc<ExecutablePlan>,
    /// Whether every fused step widens safely (probed once at width 2).
    batchable: bool,
    widths: Mutex<FxHashMap<usize, Arc<WidenedPlan>>>,
}

impl BatchedPlan {
    /// Wrap a plan, probing once whether its fused steps widen safely.
    pub fn new(plan: Arc<ExecutablePlan>) -> Self {
        let batchable = widen_plan(&plan, 2).is_some();
        BatchedPlan {
            plan,
            batchable,
            widths: Mutex::new(FxHashMap::default()),
        }
    }

    /// The underlying serial plan.
    pub fn plan(&self) -> &Arc<ExecutablePlan> {
        &self.plan
    }

    /// Whether widening is available (otherwise every batch runs
    /// serially, request by request).
    pub fn is_batchable(&self) -> bool {
        self.batchable
    }

    /// The widened plan for `width`, built and cached on first use.
    pub(crate) fn widened(&self, width: usize) -> Option<Arc<WidenedPlan>> {
        if !self.batchable || width <= 1 {
            return None;
        }
        let mut widths = self.widths.lock();
        if let Some(w) = widths.get(&width) {
            return Some(w.clone());
        }
        let w = Arc::new(widen_plan(&self.plan, width)?);
        widths.insert(width, w.clone());
        Some(w)
    }

    /// Virtual `(time, bytes)` one drained batch of `k` requests
    /// occupies on the device. Falls back to `k ×` the serial numbers
    /// when the plan does not widen.
    pub fn batch_span(&self, k: usize) -> (f64, f64) {
        match self.widened(k) {
            Some(w) => (w.virtual_time, w.bytes),
            None => (
                k as f64 * self.plan.virtual_time_per_request(),
                k as f64 * self.plan.bytes_per_request(),
            ),
        }
    }

    /// Execute `requests` as one widened batch, returning one
    /// [`Outputs`] per request in order. Bit-identical to executing
    /// each request through [`ExecutablePlan::execute_in`] with the
    /// same seed.
    ///
    /// Reference steps evaluate per request (weights resolve through
    /// the shared store, so requests 2..k are cache hits); fused steps
    /// stage shared weights once and each request's activations into
    /// its `[r·B, (r+1)·B)` slots, launch the widened kernel once, and
    /// scatter the output back per request.
    pub fn execute_batch(
        &self,
        requests: &[&InputSet],
        opts: RunOptions,
        arena: &mut BufferArena,
        weights: Option<&WeightStore>,
    ) -> Result<Vec<Outputs>, ExecError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let plan = &*self.plan;
        let widened = self.widened(requests.len());
        let Some(widened) = widened else {
            // Unbatchable (or a batch of one): serial, same arena.
            return requests
                .iter()
                .map(|r| plan.execute_cached(r, opts, arena, weights))
                .collect();
        };

        let mut tables: Vec<Vec<Option<Value<'_>>>> = requests
            .iter()
            .map(|r| plan.bind_inputs(r))
            .collect::<Result<_, _>>()?;
        let empty = FxHashMap::default();
        for (s, step) in plan.steps.iter().enumerate() {
            match step {
                Step::Reference { node, .. } => {
                    for table in &mut tables {
                        let v = plan.eval_reference(*node, table, &empty, opts.seed, weights)?;
                        table[node.0] = Some(v);
                    }
                }
                Step::Fused {
                    chain,
                    data_inputs,
                    transposed,
                    output,
                    out_shape,
                    ..
                } => {
                    let ws = widened
                        .fused
                        .get(&s)
                        .expect("every fused step of a widened plan is widened");
                    let mut st = TensorStorage::for_program_in(&ws.program, arena);
                    for (j, &node) in data_inputs.iter().enumerate() {
                        let flip = transposed.get(j).copied().unwrap_or(false);
                        if ws.shared[j] {
                            // Weights are identical across the batch
                            // (same plan, same seed): stage once from
                            // the first request's table.
                            stage_slice(&mut st, j, 0, &tables[0], node.0, flip, ws.slot_elems[j])
                                .map_err(|detail| self.kernel_error(chain, detail))?;
                        } else {
                            for (r, table) in tables.iter().enumerate() {
                                stage_slice(
                                    &mut st,
                                    j,
                                    r * ws.slot_elems[j],
                                    table,
                                    node.0,
                                    flip,
                                    ws.slot_elems[j],
                                )
                                .map_err(|detail| self.kernel_error(chain, detail))?;
                            }
                        }
                    }
                    opts.backend
                        .unwrap_or(plan.backend)
                        .executor()
                        .execute_with_arena(&ws.program, &mut st, arena)
                        .map_err(|e| self.kernel_error(chain, e.to_string()))?;
                    let out_data =
                        std::mem::take(&mut st.tensors.last_mut().expect("output buffer").data);
                    st.recycle(arena);
                    for (r, table) in tables.iter_mut().enumerate() {
                        let slice = &out_data[r * ws.out_elems..(r + 1) * ws.out_elems];
                        table[output.0] = Some(Value::Owned(HostTensor::from_vec(
                            out_shape,
                            slice.to_vec(),
                        )));
                    }
                    arena.put(out_data);
                }
            }
            for node in plan.buffers.release_after(s) {
                for table in &mut tables {
                    if let Some(Value::Owned(t)) = table[node.0].take() {
                        arena.put(t.data);
                    }
                }
            }
        }
        Ok(tables
            .iter_mut()
            .map(|t| Outputs::from_entries(plan.collect_outputs(t)))
            .collect())
    }

    fn kernel_error(&self, chain: &str, detail: String) -> ExecError {
        ExecError::Kernel {
            model: self.plan.name().to_string(),
            chain: chain.to_string(),
            detail,
        }
    }
}

/// Stage one value-table entry into buffer `buf` of `st` at `offset`,
/// transposing if the serial plan stages it transposed.
fn stage_slice(
    st: &mut TensorStorage,
    buf: usize,
    offset: usize,
    table: &[Option<Value<'_>>],
    node: usize,
    transposed: bool,
    expect_elems: usize,
) -> Result<(), String> {
    let src = table[node]
        .as_ref()
        .expect("topological order: input staged before use")
        .tensor();
    let flipped;
    let data: &[f32] = if transposed {
        flipped = src.transpose_last2();
        &flipped.data
    } else {
        &src.data
    };
    if data.len() != expect_elems {
        return Err(format!(
            "batched input #{buf} holds {} elements, widened slot expects {expect_elems}",
            data.len()
        ));
    }
    st.stage_at(buf, offset, data).map_err(|e| e.to_string())
}

/// Widen every fused step of `plan` to `width`, summing the batch's
/// virtual span (widened launches once, reference steps `width` times).
/// `None` if any fused step cannot be proven safe to widen.
fn widen_plan(plan: &ExecutablePlan, width: usize) -> Option<WidenedPlan> {
    let mut fused = FxHashMap::default();
    let mut time = 0.0;
    let mut bytes = 0.0;
    for (s, step) in plan.steps.iter().enumerate() {
        match step {
            Step::Fused { .. } => {
                let ws = widen_step(plan, s, width)?;
                time += ws.time;
                bytes += ws.bytes;
                fused.insert(s, ws);
            }
            Step::Reference {
                time: t, bytes: b, ..
            } => {
                time += width as f64 * t;
                bytes += width as f64 * b;
            }
        }
    }
    Some(WidenedPlan {
        fused,
        virtual_time: time,
        bytes,
    })
}

/// Widen fused step `s` to `width`: multiply the leading grid dim and
/// every per-request buffer's leading extent by `width`; rewrite shared
/// weight buffers' leading batch index to [`VarRef::Zero`]. `None` if
/// the program's structure does not fit the widening contract.
fn widen_step(plan: &ExecutablePlan, s: usize, width: usize) -> Option<WidenedStep> {
    let Step::Fused {
        program,
        data_inputs,
        ..
    } = &plan.steps[s]
    else {
        return None;
    };
    let base: &TileProgram = program;
    if base.grid.is_empty() || width == 0 {
        return None;
    }
    let batch = base.grid[0];

    // Classify each buffer's leading index across all of its accesses.
    let nbufs = base.buffers.len();
    let mut any_access = vec![false; nbufs];
    let mut all_batch_led = vec![true; nbufs];
    visit_accesses(&base.body, &mut |a: &TileAccess| {
        let b = a.buf.0;
        any_access[b] = true;
        all_batch_led[b] &= leading_batch(a);
    });

    let mut p = (**program).clone();
    p.name = format!("{}@x{width}", p.name);
    p.grid[0] = batch * width as u64;

    let mut shared = vec![false; data_inputs.len()];
    let mut slot_elems = vec![0usize; data_inputs.len()];
    let mut out_elems = 0usize;
    let mut rewrite_zero = vec![false; nbufs];
    let mut j = 0usize;
    for (bi, buf) in p.buffers.iter_mut().enumerate() {
        match buf.role {
            // Temps only appear in unfused pipelines; a fused program
            // carrying one is outside the widening contract.
            BufferRole::Temp => return None,
            BufferRole::Output => {
                if !any_access[bi] || !all_batch_led[bi] || buf.shape.first() != Some(&batch) {
                    return None;
                }
                out_elems = buf.len() as usize;
                buf.shape[0] = batch * width as u64;
            }
            BufferRole::Input => {
                let node = *data_inputs.get(j)?;
                let elems = buf.len() as usize;
                let is_weight = matches!(plan.graph.node(node).op, Op::Weight);
                if is_weight && buf.shape.first() == Some(&1) && buf.shape.len() >= 2 {
                    // A broadcast weight slab `[1, r, c]`: all requests
                    // read tile 0 — retarget the batch index to Zero.
                    shared[j] = true;
                    slot_elems[j] = elems;
                    rewrite_zero[bi] = true;
                } else if is_weight && !any_access[bi] {
                    shared[j] = true;
                    slot_elems[j] = elems;
                } else if is_weight && all_batch_led[bi] {
                    // Batch-replicated weight (`shape[0] == batch > 1`)
                    // — lowering never emits this; bail rather than
                    // guess.
                    return None;
                } else if is_weight {
                    // Bias-style aux: indexed by column only, already
                    // request-independent.
                    shared[j] = true;
                    slot_elems[j] = elems;
                } else if !any_access[bi] {
                    // Dead activation input: never read, stage once.
                    shared[j] = true;
                    slot_elems[j] = elems;
                } else if all_batch_led[bi] && buf.shape.first() == Some(&batch) {
                    slot_elems[j] = elems;
                    buf.shape[0] = batch * width as u64;
                } else {
                    return None;
                }
                j += 1;
            }
        }
    }
    if j != data_inputs.len() || out_elems == 0 {
        return None;
    }

    if rewrite_zero.iter().any(|&r| r) {
        visit_accesses_mut(&mut p.body, &mut |a: &mut TileAccess| {
            if rewrite_zero[a.buf.0] && leading_batch(a) {
                a.indices[0].var = VarRef::Zero;
            }
        });
    }
    p.validate().ok()?;
    // The widened program must independently re-prove the full static
    // contract — bounds, def-use, cross-slot race freedom — plus the
    // widening special case: every `VarRef::Zero`-pinned shared slab is
    // read-only in all `width` slots. An unprovable widening falls back
    // to serial execution rather than launching a coalesced kernel the
    // verifier cannot vouch for.
    mcfuser_sim::verify::verify_widened(&p).ok()?;
    let prof = measure(&p, plan.device());
    Some(WidenedStep {
        program: Arc::new(p),
        shared,
        slot_elems,
        out_elems,
        time: prof.time,
        bytes: prof.gmem_bytes,
    })
}

/// Whether an access's leading index is the unit-tile batch index the
/// lowering emits (`{Grid(0), tile: 1}`).
fn leading_batch(a: &TileAccess) -> bool {
    matches!(
        a.indices.first(),
        Some(TileIndex {
            var: VarRef::Grid(0),
            tile: 1,
        })
    )
}

/// Visit every global-buffer access of a statement list (including the
/// raw-global reads of the stitched prologue/epilogue statements — missing
/// one here would silently misclassify its buffer during widening).
fn visit_accesses(body: &[BlockStmt], f: &mut impl FnMut(&TileAccess)) {
    for stmt in body {
        match stmt {
            BlockStmt::Loop { body, .. } => visit_accesses(body, f),
            BlockStmt::Load { src, .. } => f(src),
            BlockStmt::Store { dst, .. } => f(dst),
            BlockStmt::AddGlobal { src, .. } => f(src),
            BlockStmt::RowNormStats { a, residual, .. }
            | BlockStmt::AddRecomputedNorm { a, residual, .. } => {
                f(a);
                if let Some(res) = residual {
                    f(res);
                }
            }
            _ => {}
        }
    }
}

/// Mutably visit every global-buffer access of a statement list.
fn visit_accesses_mut(body: &mut [BlockStmt], f: &mut impl FnMut(&mut TileAccess)) {
    for stmt in body {
        match stmt {
            BlockStmt::Loop { body, .. } => visit_accesses_mut(body, f),
            BlockStmt::Load { src, .. } => f(src),
            BlockStmt::Store { dst, .. } => f(dst),
            BlockStmt::AddGlobal { src, .. } => f(src),
            BlockStmt::RowNormStats { a, residual, .. }
            | BlockStmt::AddRecomputedNorm { a, residual, .. } => {
                f(a);
                if let Some(res) = residual {
                    f(res);
                }
            }
            _ => {}
        }
    }
}
