//! Search-space generation (§III-A).
//!
//! The complete space is the Cartesian product of
//!
//! * every tiling expression (deep permutations + flat arrangements), and
//! * every tile-size vector (multiples of 16 per axis).
//!
//! For the paper's running example (2-GEMM chain, M = N = 1024,
//! K = H = 512) this is `(24 + 2) × ⌈1024/16⌉² × ⌈512/16⌉² ≈ 1.09 × 10⁸`
//! candidates — far too many to materialize, so the space is *counted*
//! analytically and *sampled* lazily; only the pruned space is ever
//! enumerated.

use rand::prelude::*;

use mcfuser_ir::ChainSpec;
use mcfuser_tile::{enumerate_all, tile_option_count, tile_options, Candidate, TilingExpr};

/// The (un-pruned) search space of a chain.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// The chain being tuned.
    pub chain: ChainSpec,
    /// All tiling expressions (deep + flat).
    pub exprs: Vec<TilingExpr>,
    /// Tile-size options per axis.
    pub tile_domains: Vec<Vec<u64>>,
}

impl SearchSpace {
    /// Generate the full space of a chain.
    pub fn generate(chain: &ChainSpec) -> SearchSpace {
        let exprs = enumerate_all(chain);
        let tile_domains = (0..chain.num_axes())
            .map(|a| tile_options(chain.axis_extent(a)))
            .collect();
        SearchSpace {
            chain: chain.clone(),
            exprs,
            tile_domains,
        }
    }

    /// Total candidate count (expressions × tile combinations) — the
    /// paper's 1.09 × 10⁸ for the running example.
    pub fn count(&self) -> u128 {
        let tiles: u128 = (0..self.chain.num_axes())
            .map(|a| tile_option_count(self.chain.axis_extent(a)) as u128)
            .product();
        self.exprs.len() as u128 * tiles
    }

    /// Draw a uniformly random candidate.
    pub fn sample(&self, rng: &mut impl Rng) -> Candidate {
        let expr = self.exprs[rng.gen_range(0..self.exprs.len())].clone();
        let tiles = self
            .tile_domains
            .iter()
            .map(|d| d[rng.gen_range(0..d.len())])
            .collect();
        Candidate::new(expr, tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn paper_example_count() {
        // (24 + 2) × 64² × 32² = 109 051 904 (§III-C).
        let chain = ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512);
        let space = SearchSpace::generate(&chain);
        assert_eq!(space.count(), 109_051_904);
    }

    #[test]
    fn sample_is_within_domains() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 128);
        let space = SearchSpace::generate(&chain);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = space.sample(&mut rng);
            assert_eq!(c.tiles.len(), 4);
            for (a, t) in c.tiles.iter().enumerate() {
                assert!(space.tile_domains[a].contains(t));
            }
            assert!(space.exprs.contains(&c.expr));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 128);
        let space = SearchSpace::generate(&chain);
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| space.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| space.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn attention_space_nonempty() {
        let chain = ChainSpec::attention("s", 8, 512, 512, 64, 64);
        let space = SearchSpace::generate(&chain);
        assert_eq!(space.exprs.len(), 26);
        assert!(space.count() > 0);
    }
}
