//! Search-space generation (§III-A) and the lazy pruned space.
//!
//! The complete space is the Cartesian product of
//!
//! * every tiling expression (deep permutations + flat arrangements), and
//! * every tile-size vector (multiples of 16 per axis).
//!
//! For the paper's running example (2-GEMM chain, M = N = 1024,
//! K = H = 512) this is `(24 + 2) × ⌈1024/16⌉² × ⌈512/16⌉² ≈ 1.09 × 10⁸`
//! candidates — far too many to materialize, so *neither* space in this
//! module ever holds a candidate `Vec`:
//!
//! * [`SearchSpace`] is the un-pruned space, counted analytically and
//!   sampled lazily;
//! * [`CandidateSpace`] is the Rule-1–4 pruned space, addressed by a
//!   dense index `0..len()` that decodes arithmetically to
//!   `(expression, tile vector)`. Rule 4 is an indexed filter over the
//!   Rule-3 tile grid, built in parallel — every surviving candidate is
//!   reachable by index, with no materialization cap and no truncation
//!   bias. Large grids build the filter with a monotone per-axis
//!   frontier ([`Rule4Scan`]) instead of a dense sweep.
//!
//! Built spaces are content-addressed ([`space_fingerprint`]) and
//! shareable across tuning tasks through the engine-level
//! [`SpaceCache`]: N same-shaped chains (every BERT layer) pay for one
//! Rule-4 scan instead of N.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use rand::prelude::*;
use rustc_hash::FxHashMap;

use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use mcfuser_tile::{
    enumerate_all, estimate_shmem_bytes_for_tiles, tile_option_count, tile_options, Candidate,
    TilingExpr, RULE4_MARGIN,
};

use crate::prune::PruneStats;

/// The (un-pruned) search space of a chain.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// The chain being tuned.
    pub chain: ChainSpec,
    /// All tiling expressions (deep + flat).
    pub exprs: Vec<TilingExpr>,
    /// Tile-size options per axis.
    pub tile_domains: Vec<Vec<u64>>,
}

impl SearchSpace {
    /// Generate the full space of a chain.
    pub fn generate(chain: &ChainSpec) -> SearchSpace {
        let exprs = enumerate_all(chain);
        let tile_domains = (0..chain.num_axes())
            .map(|a| tile_options(chain.axis_extent(a)))
            .collect();
        SearchSpace {
            chain: chain.clone(),
            exprs,
            tile_domains,
        }
    }

    /// Total candidate count (expressions × tile combinations) — the
    /// paper's 1.09 × 10⁸ for the running example.
    pub fn count(&self) -> u128 {
        let tiles: u128 = (0..self.chain.num_axes())
            .map(|a| tile_option_count(self.chain.axis_extent(a)) as u128)
            .product();
        self.exprs.len() as u128 * tiles
    }

    /// Draw a uniformly random candidate.
    pub fn sample(&self, rng: &mut impl Rng) -> Candidate {
        let expr = self.exprs[rng.gen_range(0..self.exprs.len())].clone();
        let tiles = self
            .tile_domains
            .iter()
            .map(|d| d[rng.gen_range(0..d.len())])
            .collect();
        Candidate::new(expr, tiles)
    }
}

/// Tile grids at most this large index Rule-4 survivors through a compact
/// sorted id list (O(1) lookups, one `u64` per surviving combination).
/// Larger grids switch to the block-rank index, whose memory is
/// `O(grid / RANK_BLOCK)` regardless of how many combinations survive.
const COMPACT_LIMIT: u64 = 1 << 22;

/// Rule-3 grids at least this large use the monotone per-axis frontier
/// scan under [`Rule4Scan::Auto`] instead of evaluating Eq. 1 on every
/// combination: below it the dense scan's simplicity wins, above it the
/// frontier's `O(grid / |axis₀| · log |axis₀|)` estimate count does.
pub const FRONTIER_MIN_GRID: u64 = 1 << 16;

/// The frontier only pays off when the binary-searched (fastest) axis
/// offers enough tile options that `log₂ |axis₀| < |axis₀|` matters.
pub const FRONTIER_MIN_AXIS: usize = 4;

/// How the Rule-4 survivor index is computed over the Rule-3 tile grid.
/// Both strategies produce *bit-identical* indexes (proptest-verified in
/// `tests/candidate_space.rs`); they differ only in how many Eq. 1
/// estimates they evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rule4Scan {
    /// Pick per grid: the frontier for grids past [`FRONTIER_MIN_GRID`]
    /// whose fastest axis has at least [`FRONTIER_MIN_AXIS`] options,
    /// the dense scan otherwise.
    #[default]
    Auto,
    /// Evaluate Eq. 1 on every Rule-3 combination (one pass over the
    /// grid, chunk-parallel).
    Dense,
    /// Exploit Eq. 1's monotonicity: the estimate is a sum of
    /// `tileᵢ · tileⱼ` products, so it is non-decreasing in every tile
    /// extent, and the ascending Rule-3 domains make the survivors of
    /// each grid *row* (a fixed setting of all axes but the fastest) a
    /// prefix of axis 0. One binary search per row replaces `|axis₀|`
    /// dense estimates — `O(surface · log)` instead of `O(volume)` work.
    Frontier,
}

impl Rule4Scan {
    /// Resolve `Auto` against a concrete grid.
    fn use_frontier(self, tile_domains: &[Vec<u64>], grid: u64) -> bool {
        match self {
            Rule4Scan::Dense => false,
            Rule4Scan::Frontier => true,
            Rule4Scan::Auto => {
                grid >= FRONTIER_MIN_GRID
                    && tile_domains.first().map_or(0, Vec::len) >= FRONTIER_MIN_AXIS
            }
        }
    }
}

/// Block size of the rank index for very large tile grids.
const RANK_BLOCK: u64 = 1024;

/// Parallel-scan chunks below this size are not worth a thread.
const MIN_CHUNK: u64 = 1 << 14;

/// How Rule 4 is represented over the Rule-3 tile grid.
#[derive(Debug, Clone)]
enum Rule4Index {
    /// Every Rule-3 combination is admitted: the filter is disabled
    /// (`-rule4` ablation) or nothing was rejected. O(1) memory.
    PassAll,
    /// Sorted ids of the surviving combinations (small grids): O(1)
    /// index, memory proportional to the survivors.
    Compact(Vec<u64>),
    /// Cumulative survivor counts per [`RANK_BLOCK`]-sized block of the
    /// tile grid (large grids): `O(RANK_BLOCK)` index by re-filtering one
    /// block, memory `O(grid / RANK_BLOCK)`.
    Ranked(Vec<u64>),
}

/// The pruned search space Algorithm 1 explores — lazy and O(1)-indexed.
///
/// A candidate is the pair `(expr_idx, combo_rank)` packed into one dense
/// index `0..len()`: `expr_idx = idx / surviving_combos()` selects the
/// Rule-1/2 representative expression and `combo_rank` the Rule-4
/// survivor among the Rule-3 tile combinations, decoded odometer-style
/// (axis 0 fastest) from [`CandidateSpace::tile_domains`]. The order is
/// identical to what the old eager materialization produced, but nothing
/// is materialized: peak memory is O(1) in the candidate count (plus the
/// Rule-4 index, which is bounded by the *tile grid*, never by
/// `exprs × combos`), and there is no cap — index `len() - 1` is exactly
/// as reachable as index 0.
#[derive(Debug)]
pub struct CandidateSpace {
    /// The chain.
    pub chain: ChainSpec,
    /// Representative expression per surviving equivalence class.
    pub exprs: Vec<TilingExpr>,
    /// Rule-3-filtered tile options per axis.
    pub tile_domains: Vec<Vec<u64>>,
    /// The pruning waterfall (`after_rule4` always equals [`Self::len`]).
    pub stats: PruneStats,
    /// Total Rule-3 tile combinations (the grid Rule 4 filters).
    grid: u64,
    /// Rule-4 survivors among the grid.
    combos: u64,
    /// Shared-memory budget behind Rule 4; `None` when the filter is
    /// disabled ([`SpacePolicy::shared_memory_pruning`] = false).
    ///
    /// [`SpacePolicy::shared_memory_pruning`]: crate::SpacePolicy::shared_memory_pruning
    smem_limit: Option<u64>,
    /// The Rule-4 survivor index.
    rule4: Rule4Index,
    /// Smallest Eq. 1 estimate across the whole grid (filter enabled,
    /// non-empty grid only) — the context behind `EmptySearchSpace` when
    /// Rule 4 rejects everything.
    min_estimated_smem: Option<u64>,
    /// Recently decoded blocks of the `Ranked` index, sharded by
    /// *thread* ([`DECODE_SHARDS`] shards of [`DECODE_CACHE_SLOTS`]
    /// entries, most recent first): sampling-heavy searches that revisit
    /// a block pay the O(`RANK_BLOCK`) re-filter once instead of per
    /// call, and N concurrent searches over one shared space no longer
    /// serialize on a single mutex (the contention that made the shared-
    /// space `tune_smoke` path *slower* than cold). Each shard keeps two
    /// slots so `candidate()` (sampling) and `index_of` (mutant
    /// re-encoding) don't evict each other inside one search round;
    /// a single-threaded search sees exactly the old 2-slot behavior.
    decoded: Vec<Mutex<Vec<DecodedBlock>>>,
    /// How many block re-filters the `Ranked` path has performed — cache
    /// misses (the decode-cost probe behind the regression tests).
    decodes: AtomicU64,
    /// How many `Ranked` block lookups were served from a decode-cache
    /// shard without re-filtering — cache hits. Together with
    /// [`CandidateSpace::ranked_block_decodes`] this proves the sharding
    /// out: contention shows up as a depressed hit count (threads
    /// evicting each other), not just as wall time.
    decode_hits: AtomicU64,
    /// Whether the Rule-4 index was built by the monotone frontier scan
    /// (the threshold-regression probe; `false` when the dense scan ran
    /// or Rule 4 was disabled).
    frontier_scanned: bool,
}

impl Clone for CandidateSpace {
    /// The clone starts with a cold decode cache (and a zeroed probe);
    /// everything observable is identical.
    fn clone(&self) -> Self {
        CandidateSpace {
            chain: self.chain.clone(),
            exprs: self.exprs.clone(),
            tile_domains: self.tile_domains.clone(),
            stats: self.stats.clone(),
            grid: self.grid,
            combos: self.combos,
            smem_limit: self.smem_limit,
            rule4: self.rule4.clone(),
            min_estimated_smem: self.min_estimated_smem,
            decoded: fresh_decode_cache(),
            decodes: AtomicU64::new(0),
            decode_hits: AtomicU64::new(0),
            frontier_scanned: self.frontier_scanned,
        }
    }
}

/// How many decoded `Ranked` blocks each shard retains.
const DECODE_CACHE_SLOTS: usize = 2;

/// How many thread-sharded decode caches a space keeps. Lookups hash the
/// current thread id to a shard, so concurrent searches rarely share a
/// mutex *or* a slot set — a hot block decoded by one thread no longer
/// gets evicted by another thread's working set.
const DECODE_SHARDS: usize = 8;

/// A fresh (cold) sharded decode cache.
fn fresh_decode_cache() -> Vec<Mutex<Vec<DecodedBlock>>> {
    (0..DECODE_SHARDS).map(|_| Mutex::new(Vec::new())).collect()
}

/// The survivor ids of one decoded `Ranked` block.
#[derive(Debug)]
struct DecodedBlock {
    block: u64,
    ids: Vec<u64>,
}

/// Per-chunk result of the parallel Rule-4 scan.
struct ScanPart {
    /// Surviving ids (compact mode) or per-block survivor counts (ranked
    /// mode) for the chunk's subrange.
    payload: Vec<u64>,
    /// Survivors in the subrange.
    count: u64,
    /// Smallest estimate seen in the subrange.
    min_est: u64,
}

impl CandidateSpace {
    /// Build the lazy space from the Rule-1–3 survivors. `smem_limit`
    /// enables Rule 4 (`Some(Shm_max)`) or disables it (`None`, the
    /// `-rule4` ablation). `stats` carries the waterfall up to
    /// `after_rule3`; `after_rule4` is finalized here from the exact
    /// survivor count.
    pub(crate) fn build(
        chain: &ChainSpec,
        exprs: Vec<TilingExpr>,
        tile_domains: Vec<Vec<u64>>,
        smem_limit: Option<u64>,
        stats: PruneStats,
    ) -> CandidateSpace {
        Self::build_scanned(
            chain,
            exprs,
            tile_domains,
            smem_limit,
            stats,
            Rule4Scan::Auto,
        )
    }

    /// [`CandidateSpace::build`] with an explicit Rule-4 scan strategy —
    /// the hook behind the frontier ≡ dense equivalence tests and the
    /// pruning benchmarks.
    pub(crate) fn build_scanned(
        chain: &ChainSpec,
        exprs: Vec<TilingExpr>,
        tile_domains: Vec<Vec<u64>>,
        smem_limit: Option<u64>,
        mut stats: PruneStats,
        scan: Rule4Scan,
    ) -> CandidateSpace {
        let grid_wide: u128 = tile_domains.iter().map(|d| d.len() as u128).product();
        assert!(
            grid_wide <= u64::MAX as u128,
            "Rule-3 tile grid exceeds u64 addressing"
        );
        let grid = grid_wide as u64;

        let mut frontier_scanned = false;
        let (rule4, combos, min_estimated_smem) = match smem_limit {
            None => (Rule4Index::PassAll, grid, None),
            Some(_) if grid == 0 => (Rule4Index::PassAll, 0, None),
            Some(limit) => {
                frontier_scanned = scan.use_frontier(&tile_domains, grid);
                let (index, count, min_est) =
                    scan_rule4(chain, &tile_domains, grid, limit, frontier_scanned);
                (index, count, Some(min_est))
            }
        };

        stats.after_rule4 = exprs.len() as u128 * combos as u128;
        CandidateSpace {
            chain: chain.clone(),
            exprs,
            tile_domains,
            stats,
            grid,
            combos,
            smem_limit,
            rule4,
            min_estimated_smem,
            decoded: fresh_decode_cache(),
            decodes: AtomicU64::new(0),
            decode_hits: AtomicU64::new(0),
            frontier_scanned,
        }
    }

    /// Whether the Rule-4 index came from the monotone frontier scan —
    /// the probe behind the `Auto` threshold regression tests. `false`
    /// for dense scans and Rule-4-disabled spaces.
    pub fn frontier_scanned(&self) -> bool {
        self.frontier_scanned
    }

    /// Number of candidates reachable by index (= `stats.after_rule4`).
    pub fn len(&self) -> u64 {
        self.exprs.len() as u64 * self.combos
    }

    /// Whether the pruned space has no candidates at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rule-4-surviving tile combinations (per expression).
    pub fn surviving_combos(&self) -> u64 {
        self.combos
    }

    /// Size of the Rule-3 tile grid Rule 4 filtered.
    pub fn grid_combos(&self) -> u64 {
        self.grid
    }

    /// Smallest Eq. 1 shared-memory estimate across the Rule-3 grid.
    /// `Some` only when Rule 4 ran over a non-empty grid; this is the
    /// diagnostic surfaced when the filter rejects every combination.
    pub fn min_estimated_smem(&self) -> Option<u64> {
        self.min_estimated_smem
    }

    /// Decode candidate `idx` (`0..len()`). O(1) for compact/pass-all
    /// grids, O(`RANK_BLOCK`) for block-ranked ones (amortized O(1)
    /// within one block thanks to the decode cache).
    ///
    /// # Panics
    /// If `idx >= len()`.
    pub fn candidate(&self, idx: u64) -> Candidate {
        assert!(idx < self.len(), "candidate index {idx} out of range");
        let expr = &self.exprs[(idx / self.combos) as usize];
        let combo = self.combo_id(idx % self.combos);
        Candidate::new(expr.clone(), self.tiles_of(combo))
    }

    /// Map a survivor rank (`0..surviving_combos()`) to its tile-grid id.
    fn combo_id(&self, rank: u64) -> u64 {
        match &self.rule4 {
            Rule4Index::PassAll => rank,
            Rule4Index::Compact(ids) => ids[rank as usize],
            Rule4Index::Ranked(cum) => {
                // Last block whose prefix count is ≤ rank, then the
                // rank-th survivor within it from the block cache.
                let block = (cum.partition_point(|&c| c <= rank) - 1) as u64;
                let offset = (rank - cum[block as usize]) as usize;
                let mut cached = self.decode_shard().lock();
                let ids = self.decoded_block_ids(&mut cached, block);
                ids[offset]
            }
        }
    }

    /// The survivor ids of `block`, decoded through the small block
    /// cache: a hit is O(1) (and refreshes the entry's recency); a miss
    /// re-filters the block, inserts it most-recent first, and evicts the
    /// oldest entry past [`DECODE_CACHE_SLOTS`]. The re-filter mirrors
    /// the build-time scan split: when axis 0 offers at least
    /// [`FRONTIER_MIN_AXIS`] options the block is rebuilt row-by-row with
    /// one `partition_point` binary search per row (each row's survivors
    /// are a prefix of axis 0 — Eq. 1 is monotone and the domains
    /// ascend), `O(rows · log |axis₀|)` estimates instead of
    /// O(`RANK_BLOCK`); narrow axes keep the dense odometer sweep.
    fn decoded_block_ids<'a>(&self, cached: &'a mut Vec<DecodedBlock>, block: u64) -> &'a [u64] {
        if let Some(pos) = cached.iter().position(|d| d.block == block) {
            let hit = cached.remove(pos);
            cached.insert(0, hit);
            self.decode_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            let limit = self.smem_limit.expect("ranked index implies Rule 4");
            let lo = block * RANK_BLOCK;
            let hi = (lo + RANK_BLOCK).min(self.grid);
            let mut ids = Vec::new();
            let d0 = &self.tile_domains[0];
            if d0.len() >= FRONTIER_MIN_AXIS {
                let row_len = d0.len() as u64;
                let mut row = lo / row_len;
                let mut rest = row;
                let mut digits: Vec<usize> = self.tile_domains[1..]
                    .iter()
                    .map(|d| {
                        let i = (rest % d.len() as u64) as usize;
                        rest /= d.len() as u64;
                        i
                    })
                    .collect();
                let mut tiles: Vec<u64> = std::iter::once(d0[0])
                    .chain(
                        digits
                            .iter()
                            .zip(&self.tile_domains[1..])
                            .map(|(&i, d)| d[i]),
                    )
                    .collect();
                while row * row_len < hi {
                    let base = row * row_len;
                    let cnt = d0.partition_point(|&t| {
                        tiles[0] = t;
                        combo_fits(&self.chain, &tiles, limit)
                    }) as u64;
                    // Clip the surviving prefix run to the block.
                    let s = base.max(lo);
                    let e = (base + cnt).min(hi);
                    if s < e {
                        ids.extend(s..e);
                    }
                    row += 1;
                    for (a, d) in self.tile_domains[1..].iter().enumerate() {
                        digits[a] += 1;
                        if digits[a] < d.len() {
                            tiles[a + 1] = d[digits[a]];
                            break;
                        }
                        digits[a] = 0;
                        tiles[a + 1] = d[0];
                    }
                }
            } else {
                let mut odo = Odometer::at(&self.tile_domains, lo);
                for id in lo..hi {
                    if combo_fits(&self.chain, odo.tiles(), limit) {
                        ids.push(id);
                    }
                    odo.step();
                }
            }
            self.decodes.fetch_add(1, Ordering::Relaxed);
            cached.insert(0, DecodedBlock { block, ids });
            cached.truncate(DECODE_CACHE_SLOTS);
        }
        &cached[0].ids
    }

    /// The calling thread's decode-cache shard (hash of the thread id) —
    /// one thread always lands on one shard, so single-threaded searches
    /// keep the exact slot behavior (and decode counts) of the old
    /// unsharded cache.
    fn decode_shard(&self) -> &Mutex<Vec<DecodedBlock>> {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        std::thread::current().id().hash(&mut h);
        &self.decoded[(h.finish() as usize) % self.decoded.len()]
    }

    /// How many `Ranked`-index block re-filters have run so far (decode
    /// *misses*) — the probe behind the decode-cache regression tests.
    /// Always 0 for pass-all and compact grids.
    pub fn ranked_block_decodes(&self) -> u64 {
        self.decodes.load(Ordering::Relaxed)
    }

    /// How many `Ranked`-index block lookups were served from a decode
    /// shard without a re-filter (decode *hits*). A healthy
    /// sampling-heavy search shows hits ≫ decodes; cross-thread shard
    /// contention would depress this toward zero.
    pub fn ranked_block_decode_hits(&self) -> u64 {
        self.decode_hits.load(Ordering::Relaxed)
    }

    /// The dense index of a candidate, or `None` if the candidate is not
    /// in this space (unknown expression, tile size outside a Rule-3
    /// domain, or a combination Rule 4 rejected). The inverse of
    /// [`CandidateSpace::candidate`]: search mutations use it to keep
    /// survivors addressed by index.
    pub fn index_of(&self, cand: &Candidate) -> Option<u64> {
        let ei = self.exprs.iter().position(|e| *e == cand.expr)? as u64;
        if cand.tiles.len() != self.tile_domains.len() {
            return None;
        }
        // Encode the tile vector as a grid id (axis 0 fastest).
        let mut combo = 0u64;
        let mut mul = 1u64;
        for (d, &t) in self.tile_domains.iter().zip(&cand.tiles) {
            let pos = d.iter().position(|&x| x == t)? as u64;
            combo += pos * mul;
            mul *= d.len() as u64;
        }
        let rank = match &self.rule4 {
            Rule4Index::PassAll => combo,
            Rule4Index::Compact(ids) => ids.binary_search(&combo).ok()? as u64,
            Rule4Index::Ranked(cum) => {
                let block = combo / RANK_BLOCK;
                let mut cached = self.decode_shard().lock();
                let ids = self.decoded_block_ids(&mut cached, block);
                let within = ids.binary_search(&combo).ok()? as u64;
                cum[block as usize] + within
            }
        };
        Some(ei * self.combos + rank)
    }

    /// Decode a tile-grid id to its tile vector (axis 0 fastest — the
    /// same odometer order the eager materialization enumerated).
    fn tiles_of(&self, combo: u64) -> Vec<u64> {
        decode_tiles(&self.tile_domains, combo)
    }

    /// Stream every candidate in index order without materializing any.
    /// `iter().nth(i)` equals [`CandidateSpace::candidate`]`(i)`.
    pub fn iter(&self) -> impl Iterator<Item = Candidate> + '_ {
        // For the block-rank index the survivor ids are gathered once up
        // front (one grid scan shared by all expressions, O(survivors)
        // transient memory); pass-all and compact grids replay their ids
        // per expression for free.
        let ranked_ids: Option<std::sync::Arc<Vec<u64>>> = match &self.rule4 {
            Rule4Index::Ranked(_) => Some(std::sync::Arc::new(self.scan_ids().collect())),
            _ => None,
        };
        self.exprs.iter().flat_map(move |e| {
            let ids: Box<dyn Iterator<Item = u64> + Send + '_> = match (&self.rule4, &ranked_ids) {
                (Rule4Index::PassAll, _) => Box::new(0..self.combos),
                (Rule4Index::Compact(ids), _) => Box::new(ids.iter().copied()),
                (Rule4Index::Ranked(_), Some(ids)) => {
                    let ids = ids.clone();
                    Box::new((0..ids.len()).map(move |k| ids[k]))
                }
                (Rule4Index::Ranked(_), None) => unreachable!("ranked ids gathered above"),
            };
            ids.map(move |id| Candidate::new(e.clone(), self.tiles_of(id)))
        })
    }

    /// Surviving grid ids by re-filtering the whole grid (Ranked mode).
    fn scan_ids(&self) -> impl Iterator<Item = u64> + '_ {
        let limit = self.smem_limit.expect("ranked index implies Rule 4");
        let mut odo = Odometer::at(&self.tile_domains, 0);
        (0..self.grid).filter(move |_| {
            let fits = combo_fits(&self.chain, odo.tiles(), limit);
            odo.step();
            fits
        })
    }

    /// Draw a candidate from the *Rule-1–3* space, deliberately ignoring
    /// Rule 4 — samples span the pruning boundary (Fig. 10's quadrant
    /// analysis needs both sides of the line).
    pub fn sample_rule3(&self, rng: &mut impl Rng) -> Candidate {
        let expr = self.exprs[rng.gen_range(0..self.exprs.len())].clone();
        let tiles = self
            .tile_domains
            .iter()
            .map(|d| d[rng.gen_range(0..d.len())])
            .collect();
        Candidate::new(expr, tiles)
    }
}

/// Decode a tile-grid id to its tile vector: mixed-radix with axis 0 as
/// the fastest digit — the same odometer order the eager materialization
/// enumerated. The single source of the index ↔ tiles contract; every
/// other decoder ([`Odometer`], [`CandidateSpace::tiles_of`]) goes
/// through here or is property-tested against it.
fn decode_tiles(tile_domains: &[Vec<u64>], combo: u64) -> Vec<u64> {
    let mut rest = combo;
    tile_domains
        .iter()
        .map(|d| {
            let t = d[(rest % d.len() as u64) as usize];
            rest /= d.len() as u64;
            t
        })
        .collect()
}

/// Rule-4 test for a decoded tile vector (Eq. 1 is
/// expression-independent, so no `Candidate` is built).
fn combo_fits(chain: &ChainSpec, tiles: &[u64], limit: u64) -> bool {
    estimate_shmem_bytes_for_tiles(chain, tiles) as f64 <= RULE4_MARGIN * limit as f64
}

/// An incremental mixed-radix counter over the tile grid: sequential
/// scans reuse one tiles buffer instead of re-decoding (and
/// re-allocating) every id.
struct Odometer<'a> {
    domains: &'a [Vec<u64>],
    digits: Vec<usize>,
    tiles: Vec<u64>,
}

impl<'a> Odometer<'a> {
    /// Position the counter at grid id `combo`.
    fn at(domains: &'a [Vec<u64>], combo: u64) -> Odometer<'a> {
        let mut rest = combo;
        let digits: Vec<usize> = domains
            .iter()
            .map(|d| {
                let i = (rest % d.len() as u64) as usize;
                rest /= d.len() as u64;
                i
            })
            .collect();
        let tiles = digits.iter().zip(domains).map(|(&i, d)| d[i]).collect();
        Odometer {
            domains,
            digits,
            tiles,
        }
    }

    /// The tile vector at the current position.
    fn tiles(&self) -> &[u64] {
        &self.tiles
    }

    /// Advance to the next grid id (no-op past the end).
    fn step(&mut self) {
        for (a, d) in self.domains.iter().enumerate() {
            self.digits[a] += 1;
            if self.digits[a] < d.len() {
                self.tiles[a] = d[self.digits[a]];
                return;
            }
            self.digits[a] = 0;
            self.tiles[a] = d[0];
        }
    }
}

/// One frontier-scanned chunk of the grid (ids `lo..hi`, block-aligned
/// like the dense chunks): for every grid *row* intersecting the chunk —
/// a row is the `|axis₀|` consecutive ids sharing the digits of axes
/// `1..` — binary-search the largest surviving extent of axis 0 (Eq. 1
/// is monotone non-decreasing in each tile and the domains are
/// ascending, so each row's survivors are a prefix), then clip the
/// surviving run to the chunk. Payload semantics match the dense scan
/// exactly: survivor ids (compact) or per-block counts (ranked).
/// `min_est` is settled globally by the caller (monotonicity puts the
/// grid minimum at combo 0), so chunks report `u64::MAX`.
#[allow(clippy::too_many_arguments)]
fn scan_chunk_frontier(
    chain: &ChainSpec,
    tile_domains: &[Vec<u64>],
    grid: u64,
    limit: u64,
    compact: bool,
    lo_block: u64,
    hi_block: u64,
) -> ScanPart {
    let lo = lo_block * RANK_BLOCK;
    let hi = (hi_block * RANK_BLOCK).min(grid);
    let d0 = &tile_domains[0];
    let row_len = d0.len() as u64;
    let mut payload = if compact {
        Vec::new()
    } else {
        vec![0u64; (hi_block - lo_block) as usize]
    };
    let mut count = 0u64;
    if lo >= hi {
        return ScanPart {
            payload,
            count,
            min_est: u64::MAX,
        };
    }

    // Row odometer over axes 1.. (axis 0 is the binary-searched digit).
    let mut row = lo / row_len;
    let mut rest = row;
    let mut digits: Vec<usize> = tile_domains[1..]
        .iter()
        .map(|d| {
            let i = (rest % d.len() as u64) as usize;
            rest /= d.len() as u64;
            i
        })
        .collect();
    let mut tiles: Vec<u64> = std::iter::once(d0[0])
        .chain(digits.iter().zip(&tile_domains[1..]).map(|(&i, d)| d[i]))
        .collect();

    while row * row_len < hi {
        let base = row * row_len;
        let cnt = d0.partition_point(|&t| {
            tiles[0] = t;
            combo_fits(chain, &tiles, limit)
        }) as u64;
        // Clip the surviving prefix run [base, base + cnt) to the chunk.
        let s = base.max(lo);
        let e = (base + cnt).min(hi);
        if s < e {
            count += e - s;
            if compact {
                payload.extend(s..e);
            } else {
                let mut b = s / RANK_BLOCK;
                while b * RANK_BLOCK < e {
                    let b_lo = (b * RANK_BLOCK).max(s);
                    let b_hi = ((b + 1) * RANK_BLOCK).min(e);
                    payload[(b - lo_block) as usize] += b_hi - b_lo;
                    b += 1;
                }
            }
        }
        row += 1;
        for (a, d) in tile_domains[1..].iter().enumerate() {
            digits[a] += 1;
            if digits[a] < d.len() {
                tiles[a + 1] = d[digits[a]];
                break;
            }
            digits[a] = 0;
            tiles[a + 1] = d[0];
        }
    }
    ScanPart {
        payload,
        count,
        min_est: u64::MAX,
    }
}

/// The parallel Rule-4 scan: one pass over the Rule-3 grid, split into
/// contiguous chunks across the host's cores (chunk results concatenate
/// in order, so the outcome is identical at any thread count). With
/// `frontier` set, each chunk runs the monotone per-axis frontier
/// instead of the dense estimate-per-combination loop — same survivor
/// index, `O(rows · log |axis₀|)` estimates instead of `O(grid)`.
/// Returns the survivor index, the exact survivor count, and the
/// smallest estimate anywhere in the grid.
fn scan_rule4(
    chain: &ChainSpec,
    tile_domains: &[Vec<u64>],
    grid: u64,
    limit: u64,
    frontier: bool,
) -> (Rule4Index, u64, u64) {
    let compact = grid <= COMPACT_LIMIT;
    let threads = if grid < MIN_CHUNK {
        1
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(grid.div_ceil(MIN_CHUNK) as usize)
    };
    // Chunk boundaries are block-aligned so ranked per-block counts never
    // straddle a chunk.
    let blocks = grid.div_ceil(RANK_BLOCK);
    let blocks_per_chunk = blocks.div_ceil(threads as u64);

    let scan_chunk = |chunk: usize| -> ScanPart {
        // The last chunks of an uneven split can land past the end;
        // clamping makes them empty instead of inverted.
        let lo_block = (chunk as u64 * blocks_per_chunk).min(blocks);
        let hi_block = (lo_block + blocks_per_chunk).min(blocks);
        if frontier {
            return scan_chunk_frontier(
                chain,
                tile_domains,
                grid,
                limit,
                compact,
                lo_block,
                hi_block,
            );
        }
        let lo = lo_block * RANK_BLOCK;
        let hi = (hi_block * RANK_BLOCK).min(grid);
        let mut payload = Vec::new();
        let mut count = 0u64;
        let mut min_est = u64::MAX;
        let mut odo = Odometer::at(tile_domains, lo);
        if compact {
            for id in lo..hi {
                let est = estimate_shmem_bytes_for_tiles(chain, odo.tiles());
                min_est = min_est.min(est);
                if est as f64 <= RULE4_MARGIN * limit as f64 {
                    payload.push(id);
                    count += 1;
                }
                odo.step();
            }
        } else {
            for block in lo_block..hi_block {
                let b_hi = ((block + 1) * RANK_BLOCK).min(grid);
                let mut block_count = 0u64;
                for _ in block * RANK_BLOCK..b_hi {
                    let est = estimate_shmem_bytes_for_tiles(chain, odo.tiles());
                    min_est = min_est.min(est);
                    if est as f64 <= RULE4_MARGIN * limit as f64 {
                        block_count += 1;
                    }
                    odo.step();
                }
                payload.push(block_count);
                count += block_count;
            }
        }
        ScanPart {
            payload,
            count,
            min_est,
        }
    };

    let parts: Vec<ScanPart> = if threads <= 1 {
        vec![scan_chunk(0)]
    } else {
        let mut slots: Vec<Option<ScanPart>> = (0..threads).map(|_| None).collect();
        std::thread::scope(|s| {
            for (chunk, slot) in slots.iter_mut().enumerate() {
                let scan = &scan_chunk;
                s.spawn(move || *slot = Some(scan(chunk)));
            }
        });
        slots
            .into_iter()
            .map(|p| p.expect("chunk scanned"))
            .collect()
    };

    let count: u64 = parts.iter().map(|p| p.count).sum();
    let min_est = if frontier {
        // Monotonicity puts the grid minimum at the all-smallest-tiles
        // combination (id 0) — the same value the dense scan reports.
        estimate_shmem_bytes_for_tiles(chain, &decode_tiles(tile_domains, 0))
    } else {
        parts.iter().map(|p| p.min_est).min().unwrap_or(u64::MAX)
    };
    if count == grid {
        // Nothing rejected: the index is the identity.
        return (Rule4Index::PassAll, count, min_est);
    }
    if compact {
        let mut ids = Vec::with_capacity(count as usize);
        for p in parts {
            ids.extend(p.payload);
        }
        (Rule4Index::Compact(ids), count, min_est)
    } else {
        // Prefix-sum the per-block counts: cum[b] = survivors before
        // block b; cum.len() == blocks + 1.
        let mut cum = Vec::with_capacity(blocks as usize + 1);
        cum.push(0u64);
        let mut running = 0u64;
        for p in parts {
            for c in p.payload {
                running += c;
                cum.push(running);
            }
        }
        (Rule4Index::Ranked(cum), count, min_est)
    }
}

/// Content identity of a built [`CandidateSpace`]: everything space
/// construction reads *except the chain's name* — batch/m/dims (the
/// tile domains), epilogues and biases (expression enumeration and
/// Rules 1–2), dtype (the Eq. 1 estimate), the expression policy, and
/// the Rule-4 budget. Two tuning tasks sharing this fingerprint build
/// bit-identical spaces, so e.g. every same-shaped BERT layer — and
/// every transpose-layout or search-parameter variant of one — maps to
/// one Rule-4 scan.
pub fn space_fingerprint(
    chain: &ChainSpec,
    dev: &DeviceSpec,
    policy: &crate::tuner::SpacePolicy,
) -> String {
    let smem_limit = policy.shared_memory_pruning.then_some(dev.smem_per_block);
    format!(
        "b{}|m{}|d{:?}|e{:?}|bi{:?}|t{:?}|st{:?}{:?}|deep{}|smem{:?}",
        chain.batch,
        chain.m,
        chain.dims,
        chain.epilogues,
        chain.biases,
        chain.dtype,
        chain.prologue,
        chain.stitch_epilogue,
        policy.deep_tiling_only,
        smem_limit,
    )
}

/// An engine-level cache of built candidate spaces, shared by every
/// tuning task of a session (the same `Arc`-sharing discipline as
/// [`TuningCache`](crate::TuningCache), but content-addressed by
/// [`space_fingerprint`] instead of the full tuning-task key — the
/// space does not depend on search parameters or input layout, so many
/// tuning tasks map to one space).
///
/// Concurrent requests for the *same* fingerprint block on one
/// `OnceLock` and build exactly once; requests for different
/// fingerprints build in parallel. [`SpaceCache::hits`] feeds
/// [`EngineStats::space_cache_hits`](crate::EngineStats::space_cache_hits);
/// fresh builds are counted by the *caller* (the engine's
/// `space_builds` probe covers the cache-disabled path too).
///
/// Note on `Ranked`-index grids (> `COMPACT_LIMIT` combinations): the
/// shared space's interior decode cache is one small mutex-guarded
/// block cache, so many *concurrent* searches over one huge-grid space
/// contend on it — see the ROADMAP item on sharding it per thread.
#[derive(Debug)]
pub struct SpaceCache {
    entries: Mutex<SpaceCacheInner>,
    hits: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

#[derive(Debug, Default)]
struct SpaceCacheInner {
    map: FxHashMap<String, SpaceEntry>,
    tick: u64,
}

#[derive(Debug, Default)]
struct SpaceEntry {
    cell: Arc<OnceLock<Arc<CandidateSpace>>>,
    last_used: u64,
}

/// Default [`SpaceCache`] bound: distinct space fingerprints retained
/// before least-recently-used eviction kicks in. Spaces rebuild
/// deterministically, so eviction costs one Rule-4 scan, never
/// correctness; the bound keeps a long-lived multi-tenant engine's
/// memory proportional to its working set instead of its history.
pub const SPACE_CACHE_CAPACITY: usize = 128;

impl Default for SpaceCache {
    fn default() -> Self {
        Self::with_capacity(SPACE_CACHE_CAPACITY)
    }
}

impl SpaceCache {
    /// An empty cache with the default LRU bound
    /// ([`SPACE_CACHE_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache retaining at most `capacity` spaces (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SpaceCache {
            entries: Mutex::new(SpaceCacheInner::default()),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// The space for `fingerprint`, building it with `build` if this is
    /// the first request. A concurrent duplicate request waits for the
    /// in-flight build instead of scanning twice.
    ///
    /// Inserting past the capacity evicts the least-recently-used
    /// *completed* space (in-flight builds are never evicted, so the
    /// build-once guarantee holds; holders of an evicted `Arc` keep
    /// using it, and a later request simply rebuilds).
    pub fn get_or_build(
        &self,
        fingerprint: String,
        build: impl FnOnce() -> CandidateSpace,
    ) -> Arc<CandidateSpace> {
        let cell = {
            let mut inner = self.entries.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner.map.entry(fingerprint).or_default();
            entry.last_used = tick;
            let cell = entry.cell.clone();
            if inner.map.len() > self.capacity {
                let victim = inner
                    .map
                    .iter()
                    .filter(|(_, e)| e.last_used != tick && e.cell.get().is_some())
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                if let Some(k) = victim {
                    inner.map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            cell
        };
        let mut fresh = false;
        let space = cell
            .get_or_init(|| {
                fresh = true;
                Arc::new(build())
            })
            .clone();
        if !fresh {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        space
    }

    /// Requests served from an already-built space.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Spaces dropped by the LRU bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Aggregate `(hits, misses)` of the `Ranked` block-decode caches
    /// across every resident space — the contention probe surfaced
    /// through [`EngineStats`](crate::EngineStats). Evicted spaces take
    /// their counters with them, so this reflects the current working
    /// set, like [`SpaceCache::len`].
    pub fn decode_counters(&self) -> (u64, u64) {
        let entries = self.entries.lock();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for e in entries.map.values() {
            if let Some(s) = e.cell.get() {
                hits += s.ranked_block_decode_hits();
                misses += s.ranked_block_decodes();
            }
        }
        (hits, misses)
    }

    /// Number of cached spaces.
    pub fn len(&self) -> usize {
        self.entries.lock().map.len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::prune;
    use rand::rngs::StdRng;

    #[test]
    fn paper_example_count() {
        // (24 + 2) × 64² × 32² = 109 051 904 (§III-C).
        let chain = ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512);
        let space = SearchSpace::generate(&chain);
        assert_eq!(space.count(), 109_051_904);
    }

    #[test]
    fn sample_is_within_domains() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 128);
        let space = SearchSpace::generate(&chain);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = space.sample(&mut rng);
            assert_eq!(c.tiles.len(), 4);
            for (a, t) in c.tiles.iter().enumerate() {
                assert!(space.tile_domains[a].contains(t));
            }
            assert!(space.exprs.contains(&c.expr));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 128);
        let space = SearchSpace::generate(&chain);
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| space.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| space.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn attention_space_nonempty() {
        let chain = ChainSpec::attention("s", 8, 512, 512, 64, 64);
        let space = SearchSpace::generate(&chain);
        assert_eq!(space.exprs.len(), 26);
        assert!(space.count() > 0);
    }

    fn pruned(chain: &ChainSpec) -> CandidateSpace {
        let space = SearchSpace::generate(chain);
        prune(chain, &DeviceSpec::a100(), &space)
    }

    #[test]
    fn space_cache_evicts_lru_completed_spaces() {
        let cache = SpaceCache::with_capacity(2);
        let chains: Vec<ChainSpec> = (0..3)
            .map(|i| ChainSpec::gemm_chain(format!("c{i}"), 1, 128 << i, 64, 32, 32))
            .collect();
        let build = |i: usize| {
            cache.get_or_build(format!("fp{i}"), || {
                let s = SearchSpace::generate(&chains[i]);
                prune(&chains[i], &DeviceSpec::a100(), &s)
            })
        };
        build(0);
        build(1);
        // Touch 0 so 1 is the LRU victim when 2 overflows the bound.
        build(0);
        assert_eq!(cache.hits(), 1);
        build(2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        // 0 survived (touched); 1 rebuilds from scratch (no new hit).
        let hits_before = cache.hits();
        build(0);
        assert_eq!(cache.hits(), hits_before + 1);
        build(1);
        assert_eq!(cache.hits(), hits_before + 1, "evicted space must rebuild");
    }

    #[test]
    fn indexing_matches_streaming() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 128);
        let space = pruned(&chain);
        assert!(!space.is_empty());
        for (i, streamed) in space.iter().enumerate() {
            assert_eq!(space.candidate(i as u64), streamed, "index {i}");
        }
        assert_eq!(space.iter().count() as u64, space.len());
    }

    #[test]
    fn stats_after_rule4_equals_len() {
        let chain = ChainSpec::attention("s", 8, 256, 256, 64, 64);
        let space = pruned(&chain);
        assert_eq!(space.stats.after_rule4, space.len() as u128);
    }

    #[test]
    fn every_indexed_candidate_passes_rule4() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 512, 256, 256);
        let space = pruned(&chain);
        let dev = DeviceSpec::a100();
        let step = (space.len() / 97).max(1);
        let mut idx = 0;
        while idx < space.len() {
            let c = space.candidate(idx);
            assert!(mcfuser_tile::rule4_fits(&chain, &c, dev.smem_per_block));
            idx += step;
        }
    }

    #[test]
    fn ranked_index_agrees_with_compact() {
        // Force the block-rank path on a grid the compact path also
        // handles, and check they decode identically.
        let chain = ChainSpec::gemm_chain("g", 1, 512, 512, 256, 256);
        let space = pruned(&chain);
        let limit = space.smem_limit.unwrap();
        let (ranked, count, _) = {
            // Rebuild with a forced Ranked index.
            let grid = space.grid;
            let blocks = grid.div_ceil(RANK_BLOCK);
            let mut cum = Vec::with_capacity(blocks as usize + 1);
            cum.push(0u64);
            let mut running = 0;
            let mut odo = Odometer::at(&space.tile_domains, 0);
            for b in 0..blocks {
                let hi = ((b + 1) * RANK_BLOCK).min(grid);
                for _ in b * RANK_BLOCK..hi {
                    if combo_fits(&chain, odo.tiles(), limit) {
                        running += 1;
                    }
                    odo.step();
                }
                cum.push(running);
            }
            (Rule4Index::Ranked(cum), running, ())
        };
        assert_eq!(count, space.surviving_combos());
        let mut forced = space.clone();
        forced.rule4 = ranked;
        for idx in (0..space.len()).step_by((space.len() / 53).max(1) as usize) {
            assert_eq!(space.candidate(idx), forced.candidate(idx));
        }
    }

    /// Rebuild a space with its Rule-4 index forced into `Ranked` form
    /// (normally only grids past `COMPACT_LIMIT` use it).
    fn force_ranked(space: &CandidateSpace) -> CandidateSpace {
        let limit = space.smem_limit.unwrap();
        let grid = space.grid;
        let blocks = grid.div_ceil(RANK_BLOCK);
        let mut cum = Vec::with_capacity(blocks as usize + 1);
        cum.push(0u64);
        let mut running = 0;
        let mut odo = Odometer::at(&space.tile_domains, 0);
        for b in 0..blocks {
            let hi = ((b + 1) * RANK_BLOCK).min(grid);
            for _ in b * RANK_BLOCK..hi {
                if combo_fits(&space.chain, odo.tiles(), limit) {
                    running += 1;
                }
                odo.step();
            }
            cum.push(running);
        }
        assert_eq!(running, space.surviving_combos());
        let mut forced = space.clone();
        forced.rule4 = Rule4Index::Ranked(cum);
        forced
    }

    #[test]
    fn index_of_inverts_candidate_on_every_index_form() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 512, 256, 256);
        let compact = pruned(&chain);
        let ranked = force_ranked(&compact);
        let passall = {
            let space = SearchSpace::generate(&chain);
            let (reps, domains, stats) = crate::prune::rules123(&chain, &space);
            CandidateSpace::build(&chain, reps, domains, None, stats)
        };
        for space in [&compact, &ranked, &passall] {
            let step = (space.len() / 67).max(1);
            let mut idx = 0;
            while idx < space.len() {
                assert_eq!(
                    space.index_of(&space.candidate(idx)),
                    Some(idx),
                    "round trip at {idx}"
                );
                idx += step;
            }
        }
    }

    #[test]
    fn index_of_rejects_foreign_candidates() {
        let chain = ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512);
        let space = pruned(&chain);
        // A tile size outside every Rule-3 domain.
        let mut foreign = space.candidate(0);
        foreign.tiles[0] = 7;
        assert_eq!(space.index_of(&foreign), None);
        // A Rule-4-rejected combination (sample_rule3 spans the boundary).
        let dev = DeviceSpec::a100();
        let mut rng = StdRng::seed_from_u64(11);
        let rejected = std::iter::repeat_with(|| space.sample_rule3(&mut rng))
            .take(400)
            .find(|c| !mcfuser_tile::rule4_fits(&chain, c, dev.smem_per_block))
            .expect("some candidate is rejected by Rule 4");
        assert_eq!(space.index_of(&rejected), None);
        // A wrong-arity tile vector.
        let mut short = space.candidate(0);
        short.tiles.pop();
        assert_eq!(space.index_of(&short), None);
    }

    #[test]
    fn ranked_decode_cache_refilters_once_per_block() {
        // Regression for the ROADMAP "ranked-index decode cost" item:
        // before the cache, EVERY candidate() call on a Ranked grid paid
        // an O(RANK_BLOCK) block re-filter; now repeated lookups in the
        // same block pay exactly one.
        let chain = ChainSpec::gemm_chain("g", 1, 512, 512, 256, 256);
        let forced = force_ranked(&pruned(&chain));
        assert_eq!(forced.ranked_block_decodes(), 0);

        let first = forced.candidate(0);
        assert_eq!(forced.ranked_block_decodes(), 1);
        for _ in 0..50 {
            assert_eq!(forced.candidate(0), first, "cache must not change decoding");
        }
        assert_eq!(
            forced.ranked_block_decodes(),
            1,
            "same-block lookups must be served from the cache"
        );
        // index_of shares the same cache.
        assert_eq!(forced.index_of(&first), Some(0));
        assert_eq!(forced.ranked_block_decodes(), 1, "index_of hit the cache");

        // Two cache slots: bouncing between two blocks (sampling via
        // candidate() vs mutant re-encoding via index_of) decodes each
        // block once, then every further lookup in either block hits.
        let last = forced.surviving_combos() - 1;
        let last_cand = forced.candidate(last);
        let after_jump = forced.ranked_block_decodes();
        assert!(after_jump <= 2);
        assert_eq!(forced.candidate(last), last_cand);
        assert_eq!(forced.ranked_block_decodes(), after_jump, "repeat is a hit");
        for _ in 0..4 {
            assert_eq!(forced.candidate(0), first);
            assert_eq!(forced.candidate(last), last_cand);
        }
        assert_eq!(
            forced.ranked_block_decodes(),
            after_jump,
            "alternating between two blocks stays within the cache"
        );
        // A fully random walk never decodes more often than it looks up.
        let mut rng = StdRng::seed_from_u64(5);
        let before = forced.ranked_block_decodes();
        for _ in 0..32 {
            forced.candidate(rng.gen_range(0..forced.len()));
        }
        assert!(forced.ranked_block_decodes() <= before + 32);
    }

    #[test]
    fn ranked_refilter_frontier_and_dense_paths_agree() {
        // m = 512 gives axis 0 ≥ FRONTIER_MIN_AXIS options (binary-search
        // re-filter); m = 48 gives 3 (dense odometer fallback). Both must
        // decode exactly what the compact index decodes.
        for m in [512u64, 48] {
            let chain = ChainSpec::gemm_chain("g", 1, m, 512, 256, 256);
            let compact = pruned(&chain);
            assert!(!compact.is_empty());
            let forced = force_ranked(&compact);
            let step = (compact.len() / 61).max(1);
            let mut idx = 0;
            while idx < compact.len() {
                assert_eq!(
                    compact.candidate(idx),
                    forced.candidate(idx),
                    "m={m} idx={idx}"
                );
                assert_eq!(forced.index_of(&compact.candidate(idx)), Some(idx));
                idx += step;
            }
        }
    }

    #[test]
    fn stitched_chains_get_their_own_fingerprint() {
        // A stitched chain and its unstitched twin share batch/m/dims/
        // epilogues but must not share a Rule-4 space (different Eq. 1).
        let plain = ChainSpec::gemm_chain("g", 1, 512, 64, 256, 256);
        let mut st = plain.clone();
        st.prologue = Some(mcfuser_ir::PrologueSpec {
            residual: true,
            affine: true,
            a_half: false,
            eps: 1e-5,
        });
        st.stitch_epilogue = Some(mcfuser_ir::EpilogueStitch {
            residual: mcfuser_ir::ResidualSource::PrologueOut,
            layer_norm: true,
            affine: true,
            eps: 1e-5,
        });
        let dev = DeviceSpec::a100();
        let pol = crate::tuner::SpacePolicy::default();
        assert_ne!(
            space_fingerprint(&plain, &dev, &pol),
            space_fingerprint(&st, &dev, &pol)
        );
        assert_eq!(
            space_fingerprint(&st.unstitched(), &dev, &pol),
            space_fingerprint(&plain, &dev, &pol)
        );
    }

    #[test]
    fn min_estimated_smem_is_reported() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let space = pruned(&chain);
        let min = space.min_estimated_smem().unwrap();
        // The smallest-tile combination bounds the minimum from above.
        let smallest: Vec<u64> = space.tile_domains.iter().map(|d| d[0]).collect();
        let est = estimate_shmem_bytes_for_tiles(&chain, &smallest);
        assert!(min <= est);
        assert!(min > 0);
    }

    #[test]
    fn sample_rule3_spans_the_pruning_boundary() {
        let chain = ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512);
        let space = pruned(&chain);
        let dev = DeviceSpec::a100();
        let mut rng = StdRng::seed_from_u64(3);
        let (mut kept, mut cut) = (0, 0);
        for _ in 0..400 {
            let c = space.sample_rule3(&mut rng);
            if mcfuser_tile::rule4_fits(&chain, &c, dev.smem_per_block) {
                kept += 1;
            } else {
                cut += 1;
            }
        }
        assert!(kept > 0 && cut > 0, "kept {kept} cut {cut}");
    }
}
