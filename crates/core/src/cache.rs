//! Content-addressed tuning cache behind the [`FusionEngine`] session
//! API (§V-B's "compiler caching tuned tasks", made explicit).
//!
//! The cache key captures everything the winning schedule depends on:
//! the full chain content (batch, `m`, dims, epilogues **and dtype**),
//! the input-transpose layout the graph feeds the kernel with, the
//! target device, and the search configuration. The previous ad-hoc
//! string key (`format!("b{}m{}d{:?}e{:?}", …)` inside `compile_graph`)
//! silently omitted dtype and layout, so e.g. an f16 and an f32 chain of
//! the same shape shared one `TunedKernel`; [`CacheKey`] closes that
//! hole, and `tests/engine_api.rs` keeps it closed.
//!
//! Two implementations of [`TuningCache`] ship: [`MemoryCache`] for
//! within-session reuse and [`JsonDiskCache`] for cross-session
//! persistence (tune once, ship the schedule). Entries store the winning
//! schedule plus its provenance, not the lowered kernel — re-lowering a
//! cached schedule is deterministic and cheap, while measurements are
//! the expensive part a cache exists to avoid.
//!
//! [`FusionEngine`]: crate::engine::FusionEngine

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use rustc_hash::FxHashMap;

use mcfuser_ir::ChainSpec;
use mcfuser_sim::{DeviceSpec, TuningReport};

use crate::prune::PruneStats;
use crate::search::SearchParams;
use crate::tuner::{SpacePolicy, TunedKernel};

/// Stable fingerprint of *every* field of a device spec (via its
/// `Debug` form, hashed with the deterministic Fx hash). Two specs
/// sharing a name but differing in any performance-relevant number —
/// shared memory, bandwidths, SM count — must never share schedules.
pub fn device_fingerprint(dev: &DeviceSpec) -> String {
    use std::hash::Hasher;
    let mut h = rustc_hash::FxHasher::default();
    h.write(format!("{dev:?}").as_bytes());
    format!("{}#{:016x}", dev.name, h.finish())
}

/// Content-addressed identity of one tuning task.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Batch size.
    pub batch: u64,
    /// Row dimension `m`.
    pub m: u64,
    /// `d₀ … d_L`.
    pub dims: Vec<u64>,
    /// Canonical epilogue descriptions (scales included).
    pub epilogues: Vec<String>,
    /// Per-stage bias flags (a biased chain loads extra tensors and
    /// must never share a schedule entry with its unbiased twin).
    pub biases: Vec<bool>,
    /// Canonical storage-precision name.
    pub dtype: String,
    /// Canonical stitched prologue/epilogue description (`None|None` for
    /// plain chains). A stitched chain loads extra operands and rounds
    /// through different precision points, so it must never share a
    /// schedule entry with its unstitched twin.
    pub stitch: String,
    /// Per input: stored transposed in the graph relative to chain layout.
    pub transposed_inputs: Vec<bool>,
    /// Target-device fingerprint.
    pub device: String,
    /// Search-configuration fingerprint.
    pub config: String,
}

impl CacheKey {
    /// Build the key for tuning `chain` on `dev` under the given search
    /// configuration, with `transposed_inputs` describing the layout the
    /// surrounding graph feeds the kernel with (empty slice = natural
    /// layout for every input).
    pub fn new(
        chain: &ChainSpec,
        transposed_inputs: &[bool],
        dev: &DeviceSpec,
        params: &SearchParams,
        policy: &SpacePolicy,
    ) -> Self {
        // Normalize the layout: trailing `false` flags are the natural
        // layout, so `[]`, `[false]`, and `[false; n]` all describe the
        // same task and must share one key.
        let mut transposed_inputs = transposed_inputs.to_vec();
        while transposed_inputs.last() == Some(&false) {
            transposed_inputs.pop();
        }
        CacheKey {
            batch: chain.batch,
            m: chain.m,
            dims: chain.dims.clone(),
            epilogues: chain.epilogues.iter().map(|e| format!("{e:?}")).collect(),
            biases: chain.biases.clone(),
            dtype: format!("{:?}", chain.dtype),
            stitch: format!("{:?}|{:?}", chain.prologue, chain.stitch_epilogue),
            transposed_inputs,
            device: device_fingerprint(dev),
            config: format!(
                "pop{}top{}eps{}maxr{}minr{}seed{}model{:?}{:?}{:?}dle{}rr{}deep{}r4{}",
                params.population,
                params.topk,
                params.epsilon,
                params.max_rounds,
                params.min_rounds,
                params.seed,
                params.model.dead_loop_elimination,
                params.model.include_compute,
                params.model.include_alpha,
                params.dead_loop_elimination,
                params.random_ranking,
                policy.deep_tiling_only,
                policy.shared_memory_pruning,
            ),
        }
    }

    /// Canonical string form — the map/JSON key.
    pub fn canonical(&self) -> String {
        format!(
            "b{}|m{}|d{:?}|e{:?}|bi{:?}|t{}|st[{}]|x{:?}|dev[{}]|cfg[{}]",
            self.batch,
            self.m,
            self.dims,
            self.epilogues,
            self.biases,
            self.dtype,
            self.stitch,
            self.transposed_inputs,
            self.device,
            self.config,
        )
    }
}

/// The persisted essence of a [`TunedKernel`]: the winning schedule and
/// its tuning provenance. The kernel itself is reconstructed by
/// re-lowering (deterministic) rather than stored.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedTuning {
    /// Winning tiling expression, in `TilingExpr::display` form.
    pub expr: String,
    /// Winning tile sizes.
    pub tiles: Vec<u64>,
    /// Search rounds until convergence.
    pub rounds: usize,
    /// Candidates measured during the original search.
    pub measured: usize,
    /// Pruning waterfall of the original search.
    pub prune_stats: PruneStats,
    /// Virtual tuning-cost report of the original search.
    pub tuning: TuningReport,
}

impl CachedTuning {
    /// Capture the persistable part of a tuned kernel.
    pub fn from_tuned(tuned: &TunedKernel) -> Self {
        CachedTuning {
            expr: tuned.candidate.expr.display(&tuned.chain),
            tiles: tuned.candidate.tiles.clone(),
            rounds: tuned.rounds,
            measured: tuned.measured,
            prune_stats: tuned.prune_stats.clone(),
            tuning: tuned.tuning.clone(),
        }
    }

    fn to_json(&self) -> serde_json::Value {
        let s = &self.prune_stats;
        let prune = serde_json::json!({
            "original": s.original.to_string(),
            "after_rule1": s.after_rule1.to_string(),
            "after_rule2": s.after_rule2.to_string(),
            "after_rule3": s.after_rule3.to_string(),
            "after_rule4": s.after_rule4.to_string(),
            "exprs_original": s.exprs_original,
            "exprs_rule1": s.exprs_rule1,
            "exprs_rule2": s.exprs_rule2,
        });
        let t = &self.tuning;
        let tuning = serde_json::json!({
            "virtual_seconds": t.virtual_seconds,
            "compiles": t.compiles,
            "measurements": t.measurements,
            "train_rounds": t.train_rounds,
            "estimates": t.estimates,
        });
        serde_json::json!({
            "expr": self.expr,
            "tiles": self.tiles,
            "rounds": self.rounds,
            "measured": self.measured,
            "prune_stats": prune,
            "tuning": tuning,
        })
    }

    fn from_json(v: &serde_json::Value) -> Option<Self> {
        let u128_field = |obj: &serde_json::Value, key: &str| -> Option<u128> {
            obj.get(key)?.as_str()?.parse().ok()
        };
        let p = v.get("prune_stats")?;
        let t = v.get("tuning")?;
        Some(CachedTuning {
            expr: v.get("expr")?.as_str()?.to_string(),
            tiles: v
                .get("tiles")?
                .as_array()?
                .iter()
                .map(|x| x.as_u64())
                .collect::<Option<Vec<u64>>>()?,
            rounds: v.get("rounds")?.as_u64()? as usize,
            measured: v.get("measured")?.as_u64()? as usize,
            prune_stats: PruneStats {
                original: u128_field(p, "original")?,
                after_rule1: u128_field(p, "after_rule1")?,
                after_rule2: u128_field(p, "after_rule2")?,
                after_rule3: u128_field(p, "after_rule3")?,
                after_rule4: u128_field(p, "after_rule4")?,
                exprs_original: p.get("exprs_original")?.as_u64()? as usize,
                exprs_rule1: p.get("exprs_rule1")?.as_u64()? as usize,
                exprs_rule2: p.get("exprs_rule2")?.as_u64()? as usize,
            },
            tuning: TuningReport {
                virtual_seconds: t.get("virtual_seconds")?.as_f64()?,
                compiles: t.get("compiles")?.as_u64()?,
                measurements: t.get("measurements")?.as_u64()?,
                train_rounds: t.get("train_rounds")?.as_u64()?,
                estimates: t.get("estimates")?.as_u64()?,
            },
        })
    }
}

/// A store of tuning results shared by every chain an engine session
/// touches. Implementations must be safe to call from the engine's
/// parallel tuning workers.
pub trait TuningCache: Send + Sync {
    /// Look up a tuning task.
    fn get(&self, key: &CacheKey) -> Option<CachedTuning>;
    /// Record a finished tuning task.
    fn put(&self, key: &CacheKey, entry: CachedTuning);
    /// Number of stored entries.
    fn len(&self) -> usize;
    /// Whether the cache holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Force pending state to durable storage and report failure —
    /// write-through `put`s deliberately swallow I/O errors to keep
    /// tuning alive, so shutdown paths (e.g.
    /// [`ModelRuntime::shutdown`](crate::ModelRuntime::shutdown)) call
    /// this to learn whether anything was actually lost. Purely
    /// in-memory caches have nothing to persist and return `Ok(())`.
    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
    /// How many write-through persistence attempts have failed so far
    /// (surfaced in [`EngineStats`](crate::EngineStats)).
    fn persist_errors(&self) -> u64 {
        0
    }
    /// Entries dropped by a capacity bound, if the implementation has
    /// one (surfaced as
    /// [`EngineStats::tuning_cache_evictions`](crate::EngineStats::tuning_cache_evictions)).
    /// Unbounded caches report 0.
    fn evictions(&self) -> u64 {
        0
    }
}

/// Default [`MemoryCache`] bound: tuned schedules retained before
/// least-recently-used eviction. A schedule re-tunes deterministically
/// after eviction, so the bound trades re-tuning time for a memory
/// ceiling under many-tenant serving.
pub const MEMORY_CACHE_CAPACITY: usize = 512;

/// In-memory cache: reuse within one engine session (and across sessions
/// sharing the engine). LRU-bounded — see [`MEMORY_CACHE_CAPACITY`].
#[derive(Debug)]
pub struct MemoryCache {
    entries: Mutex<LruEntries>,
    capacity: usize,
    evicted: AtomicU64,
}

#[derive(Debug, Default)]
struct LruEntries {
    map: FxHashMap<String, (CachedTuning, u64)>,
    tick: u64,
}

impl LruEntries {
    /// Touch-and-insert; returns the evicted key count (0 or 1).
    fn insert_bounded(&mut self, key: String, entry: CachedTuning, capacity: usize) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(key.clone(), (entry, tick));
        if self.map.len() > capacity {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone());
            if let Some(k) = victim {
                self.map.remove(&k);
                return 1;
            }
        }
        0
    }
}

impl Default for MemoryCache {
    fn default() -> Self {
        Self::with_capacity(MEMORY_CACHE_CAPACITY)
    }
}

impl MemoryCache {
    /// Empty cache with the default bound ([`MEMORY_CACHE_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache retaining at most `capacity` schedules (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        MemoryCache {
            entries: Mutex::new(LruEntries::default()),
            capacity: capacity.max(1),
            evicted: AtomicU64::new(0),
        }
    }
}

impl TuningCache for MemoryCache {
    fn get(&self, key: &CacheKey) -> Option<CachedTuning> {
        let mut inner = self.entries.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(&key.canonical()).map(|slot| {
            slot.1 = tick;
            slot.0.clone()
        })
    }

    fn put(&self, key: &CacheKey, entry: CachedTuning) {
        let evicted = self
            .entries
            .lock()
            .insert_bounded(key.canonical(), entry, self.capacity);
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    fn len(&self) -> usize {
        self.entries.lock().map.len()
    }

    fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// JSON-on-disk cache: write-through persistence so a fresh engine (or a
/// fresh process) reuses every schedule tuned before it started.
///
/// Each `put` merges the file's current contents before rewriting, so
/// concurrent engines sharing one path enrich rather than clobber each
/// other (a short read-merge-write race remains; entries for the same
/// key are deterministic, so the races are benign).
#[derive(Debug)]
pub struct JsonDiskCache {
    path: PathBuf,
    entries: Mutex<FxHashMap<String, CachedTuning>>,
    /// Serializes writers without making readers (or tuning workers
    /// inserting into `entries`) wait on disk I/O.
    io: Mutex<()>,
    /// Persistence attempts that failed (write-through keeps going, but
    /// the failures are counted and reported by `persist_errors`/`flush`).
    write_errors: AtomicU64,
    /// Whether the warn-once message has been printed.
    warned: AtomicBool,
}

/// Parse the on-disk document into an entry map. A missing file yields
/// an empty map; a corrupt one yields `None` so callers can warn.
fn read_entries(path: &Path) -> Option<FxHashMap<String, CachedTuning>> {
    let mut entries = FxHashMap::default();
    let Ok(text) = std::fs::read_to_string(path) else {
        return Some(entries);
    };
    let doc = serde_json::from_str(&text).ok()?;
    if let Some(map) = doc.get("entries").and_then(|e| e.as_object()) {
        for (k, v) in map.iter() {
            if let Some(entry) = CachedTuning::from_json(v) {
                entries.insert(k.clone(), entry);
            }
        }
    }
    Some(entries)
}

impl JsonDiskCache {
    /// Open (or create) a cache file. A missing file starts empty; a
    /// corrupt or partially written file is treated as empty rather than
    /// failing the session, matching how a production service degrades.
    pub fn open(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let entries = read_entries(&path).unwrap_or_else(|| {
            eprintln!("[mcfuser] ignoring corrupt tuning cache {}", path.display());
            FxHashMap::default()
        });
        JsonDiskCache {
            path,
            entries: Mutex::new(entries),
            io: Mutex::new(()),
            write_errors: AtomicU64::new(0),
            warned: AtomicBool::new(false),
        }
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Merge the file's current entries into a snapshot (ours win on
    /// conflict), atomically rewrite it, and fold anything another
    /// writer contributed back into memory. Caller must NOT hold the
    /// `entries` lock — only the `io` lock serializes this.
    fn persist(&self, mut entries: FxHashMap<String, CachedTuning>) -> std::io::Result<()> {
        if let Some(on_disk) = read_entries(&self.path) {
            let mut foreign: Vec<(String, CachedTuning)> = Vec::new();
            for (k, v) in on_disk {
                if let std::collections::hash_map::Entry::Vacant(slot) = entries.entry(k) {
                    foreign.push((slot.key().clone(), v.clone()));
                    slot.insert(v);
                }
            }
            if !foreign.is_empty() {
                let mut g = self.entries.lock();
                for (k, v) in foreign {
                    g.entry(k).or_insert(v);
                }
            }
        }
        let mut map = serde_json::Map::new();
        for (k, v) in entries.iter() {
            map.insert(k.clone(), v.to_json());
        }
        let doc = serde_json::json!({ "version": 1u64, "entries": map });
        let text = serde_json::to_string(&doc).expect("serializable cache");
        // Write-then-rename keeps readers from ever seeing a torn file.
        let tmp = self.path.with_extension("json.tmp");
        let result = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &self.path));
        if let Err(e) = &result {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            // Warn once — a persistently unwritable path would otherwise
            // spam one line per tuned chain. The count keeps climbing and
            // is surfaced via `persist_errors`/`flush`.
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "[mcfuser] warning: could not persist tuning cache to {}: {e}",
                    self.path.display()
                );
            }
        }
        result
    }
}

impl TuningCache for JsonDiskCache {
    fn get(&self, key: &CacheKey) -> Option<CachedTuning> {
        self.entries.lock().get(&key.canonical()).cloned()
    }

    fn put(&self, key: &CacheKey, entry: CachedTuning) {
        let snapshot = {
            let mut g = self.entries.lock();
            g.insert(key.canonical(), entry);
            g.clone()
        };
        // Disk I/O happens outside the entries lock so concurrent
        // tuning workers never stall on a file write. Write-through is
        // best-effort: a failure is counted (and warned about once) but
        // never fails the tuning that produced the entry.
        let _writer = self.io.lock();
        let _ = self.persist(snapshot);
    }

    fn len(&self) -> usize {
        self.entries.lock().len()
    }

    fn flush(&self) -> std::io::Result<()> {
        let snapshot = self.entries.lock().clone();
        let _writer = self.io.lock();
        // Name the file in the error: a shutdown report aggregating
        // several caches must say WHICH one lost its entries.
        self.persist(snapshot)
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", self.path.display())))
    }

    fn persist_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_sim::DType;

    fn key_for(chain: &ChainSpec) -> CacheKey {
        CacheKey::new(
            chain,
            &[false; 3],
            &DeviceSpec::a100(),
            &SearchParams::default(),
            &SpacePolicy::default(),
        )
    }

    fn sample_entry() -> CachedTuning {
        CachedTuning {
            expr: "mhnk".into(),
            tiles: vec![64, 32, 64, 16],
            rounds: 4,
            measured: 21,
            prune_stats: PruneStats {
                original: 170_000_000,
                after_rule1: 1_000_000,
                after_rule2: 800_000,
                after_rule3: 12_000,
                after_rule4: 9_000,
                exprs_original: 26,
                exprs_rule1: 11,
                exprs_rule2: 7,
            },
            tuning: TuningReport {
                virtual_seconds: 41.5,
                compiles: 30,
                measurements: 21,
                train_rounds: 0,
                estimates: 900,
            },
        }
    }

    #[test]
    fn json_round_trip_preserves_entry() {
        let e = sample_entry();
        let back = CachedTuning::from_json(&e.to_json()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn dtype_reaches_the_key() {
        let mut a = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
        let mut b = a.clone();
        a.dtype = DType::F16;
        b.dtype = DType::F32;
        assert_ne!(key_for(&a).canonical(), key_for(&b).canonical());
    }

    #[test]
    fn biases_reach_the_key() {
        let a = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
        let mut b = a.clone();
        b.biases = vec![true, false];
        assert_ne!(key_for(&a).canonical(), key_for(&b).canonical());
    }

    #[test]
    fn mask_epilogue_reaches_the_key() {
        let a = ChainSpec::attention("s", 2, 128, 128, 64, 64);
        let b = ChainSpec::masked_attention("s", 2, 128, 128, 64, 64);
        assert_ne!(key_for(&a).canonical(), key_for(&b).canonical());
    }

    #[test]
    fn memory_cache_round_trip() {
        let chain = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
        let cache = MemoryCache::new();
        let key = key_for(&chain);
        assert!(cache.get(&key).is_none());
        cache.put(&key, sample_entry());
        assert_eq!(cache.get(&key).unwrap(), sample_entry());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn memory_cache_evicts_lru_beyond_capacity() {
        let cache = MemoryCache::with_capacity(2);
        let keys: Vec<CacheKey> = (0..3)
            .map(|i| {
                key_for(&ChainSpec::gemm_chain(
                    format!("g{i}"),
                    1,
                    256 << i,
                    128,
                    64,
                    64,
                ))
            })
            .collect();
        cache.put(&keys[0], sample_entry());
        cache.put(&keys[1], sample_entry());
        // Touch 0 so 1 is the least recently used when 2 overflows.
        assert!(cache.get(&keys[0]).is_some());
        cache.put(&keys[2], sample_entry());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&keys[1]).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[2]).is_some());
        // Re-putting the evicted key is a fresh insert, evicting again.
        cache.put(&keys[1], sample_entry());
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn device_fingerprint_covers_every_field() {
        let stock = DeviceSpec::a100();
        let mut bigger_smem = stock.clone();
        bigger_smem.smem_per_block += 1024;
        assert_ne!(device_fingerprint(&stock), device_fingerprint(&bigger_smem));
        let chain = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
        let params = SearchParams::default();
        let policy = SpacePolicy::default();
        assert_ne!(
            CacheKey::new(&chain, &[], &stock, &params, &policy),
            CacheKey::new(&chain, &[], &bigger_smem, &params, &policy),
            "a what-if device study must never share schedules"
        );
    }

    #[test]
    fn concurrent_disk_caches_merge_instead_of_clobbering() {
        let dir = std::env::temp_dir().join(format!(
            "mcfuser-cache-merge-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuning.json");
        let chain_a = ChainSpec::gemm_chain("a", 1, 256, 128, 64, 64);
        let chain_b = ChainSpec::gemm_chain("b", 2, 512, 128, 64, 64);

        // Two instances on the same path, each writing a different key.
        let one = JsonDiskCache::open(&path);
        let two = JsonDiskCache::open(&path);
        one.put(&key_for(&chain_a), sample_entry());
        two.put(&key_for(&chain_b), sample_entry());

        let reopened = JsonDiskCache::open(&path);
        assert!(reopened.get(&key_for(&chain_a)).is_some(), "a survived");
        assert!(reopened.get(&key_for(&chain_b)).is_some(), "b survived");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_path_counts_errors_and_flush_reports_them() {
        // A path whose parent directory does not exist: every persist
        // attempt fails. Write-through puts must keep working (the entry
        // stays queryable in memory), the failure must be counted, and
        // flush() must surface it as an Err.
        let path = std::env::temp_dir()
            .join(format!("mcfuser-no-such-dir-{}", std::process::id()))
            .join("tuning.json");
        let cache = JsonDiskCache::open(&path);
        let chain = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
        let key = key_for(&chain);
        cache.put(&key, sample_entry());
        assert_eq!(cache.get(&key).unwrap(), sample_entry(), "put still serves");
        assert_eq!(cache.persist_errors(), 1);
        assert!(cache.flush().is_err(), "flush reports the lost persistence");
        assert_eq!(cache.persist_errors(), 2);
    }

    #[test]
    fn healthy_disk_cache_flushes_cleanly() {
        let dir = std::env::temp_dir().join(format!(
            "mcfuser-cache-flush-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = JsonDiskCache::open(dir.join("tuning.json"));
        let chain = ChainSpec::gemm_chain("g", 1, 256, 128, 64, 64);
        cache.put(&key_for(&chain), sample_entry());
        assert!(cache.flush().is_ok());
        assert_eq!(cache.persist_errors(), 0);
        // And the memory-only cache trivially flushes.
        assert!(MemoryCache::new().flush().is_ok());
        assert_eq!(MemoryCache::new().persist_errors(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_survives_reopen_and_ignores_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "mcfuser-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuning.json");
        let chain = ChainSpec::gemm_chain("g", 2, 256, 128, 64, 64);
        let key = key_for(&chain);

        let first = JsonDiskCache::open(&path);
        first.put(&key, sample_entry());
        drop(first);

        let reopened = JsonDiskCache::open(&path);
        assert_eq!(reopened.get(&key).unwrap(), sample_entry());

        std::fs::write(&path, "{ not json").unwrap();
        let corrupt = JsonDiskCache::open(&path);
        assert!(corrupt.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
