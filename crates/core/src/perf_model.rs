//! The analytical performance model — Equations (2)–(5) of §IV-A.
//!
//! ```text
//! t_estm = (t_mem + t_comp) × α                         (2)
//! t_mem  = Σ_S  TS_S · Π_{l ∈ LPset(S)} l / W           (3)
//! t_comp = Σ_C  Fp_C · Π_{l ∈ LPset(C)} l / P           (4)
//! α      = (N_block + N_SM) / N_block                   (5)
//! ```
//!
//! The trip products come from the DAG-optimized statement placement, so
//! the model automatically rewards the §III-B hoisting. It is deliberately
//! coarse — peak `W` and `P`, no L2, no tensor-core fill effects — which
//! is exactly why the simulator's richer "measurement" correlates with it
//! imperfectly (Fig. 11, r ≈ 0.8–0.9) and why Algorithm 1 still measures
//! the top-k candidates.

use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use mcfuser_tile::{place, Candidate, PlacementError, Stmt, TensorRef};

/// Breakdown of an analytical estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfEstimate {
    /// Eq. 3: global-memory time in seconds.
    pub t_mem: f64,
    /// Eq. 4: computation time in seconds.
    pub t_comp: f64,
    /// Eq. 5: parallelism slowdown factor.
    pub alpha: f64,
    /// Eq. 2: total estimated time in seconds.
    pub total: f64,
    /// Thread blocks of the candidate.
    pub blocks: u64,
}

/// Knobs distinguishing MCFuser's analytical model from ablated variants
/// (the MCFuser-Chimera baseline minimizes data movement only and skips
/// dead-loop elimination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelOptions {
    /// Apply §III-B dead-loop elimination before computing trip counts.
    pub dead_loop_elimination: bool,
    /// Include the computation term (Eq. 4).
    pub include_compute: bool,
    /// Include the slowdown factor (Eq. 5).
    pub include_alpha: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            dead_loop_elimination: true,
            include_compute: true,
            include_alpha: true,
        }
    }
}

impl ModelOptions {
    /// Chimera's objective: data-movement minimization on the
    /// un-eliminated DAG. The parallelism factor stays on (Chimera's
    /// block-execution-order model is parallelism-aware); what it ignores
    /// is redundant *computation* (§VII: "neglecting the impact of
    /// redundant computation").
    pub fn chimera() -> Self {
        ModelOptions {
            dead_loop_elimination: false,
            include_compute: false,
            include_alpha: true,
        }
    }
}

/// Estimate a candidate's runtime. Returns `Err` for candidates whose
/// statements cannot be placed (structurally invalid schedules).
pub fn estimate(
    chain: &ChainSpec,
    cand: &Candidate,
    dev: &DeviceSpec,
) -> Result<PerfEstimate, PlacementError> {
    estimate_with(chain, cand, dev, &ModelOptions::default())
}

/// Estimate with explicit model options.
pub fn estimate_with(
    chain: &ChainSpec,
    cand: &Candidate,
    dev: &DeviceSpec,
    opts: &ModelOptions,
) -> Result<PerfEstimate, PlacementError> {
    let placement = if opts.dead_loop_elimination {
        place(chain, cand)?
    } else {
        mcfuser_tile::place_into(chain, cand, &cand.block_expr(chain))?
    };
    let blocks = cand.num_blocks(chain);
    let nb = blocks as f64;
    let esz = chain.dtype.size_bytes() as f64;

    let mut t_mem = 0.0f64;
    let mut t_comp = 0.0f64;
    for (stmt, _) in &placement.paths {
        let trips = placement.block_trips(chain, cand, *stmt) as f64 * nb;
        match stmt {
            Stmt::Load(t) => {
                let (r, c) = mcfuser_tile::tile_shape(chain, *t, &cand.tiles);
                t_mem += (r * c) as f64 * esz * trips / dev.dram_bandwidth;
            }
            Stmt::Store => {
                let (r, c) = mcfuser_tile::tile_shape(chain, TensorRef::Output, &cand.tiles);
                t_mem += (r * c) as f64 * esz * trips / dev.dram_bandwidth;
            }
            Stmt::Compute(i) => {
                let tm = cand.tiles[0];
                let tk = cand.tiles[i + 1];
                let tn = cand.tiles[i + 2];
                let flops = 2.0 * (tm * tk * tn) as f64;
                t_comp += flops * trips / dev.peak_flops(chain.dtype);
            }
        }
    }

    // Auxiliary-input traffic: a stage's bias strip / mask tile is
    // loaded wherever its epilogue is emitted — with the consuming
    // compute block (or the store, for the final stage).
    for i in 0..chain.num_ops() {
        let has_bias = chain.biases.get(i).copied().unwrap_or(false);
        let has_mask = chain.epilogues[i].needs_mask();
        if !has_bias && !has_mask {
            continue;
        }
        let emit_at = if i + 1 < chain.num_ops() {
            Stmt::Compute(i + 1)
        } else {
            Stmt::Store
        };
        let trips = placement.block_trips(chain, cand, emit_at) as f64 * nb;
        let cols = cand.tiles[i + 2] as f64;
        if has_bias {
            t_mem += cols * esz * trips / dev.dram_bandwidth;
        }
        if has_mask {
            t_mem += cand.tiles[0] as f64 * cols * esz * trips / dev.dram_bandwidth;
        }
    }

    // Stitched prologue/epilogue traffic. The stitch trades the unfused
    // layout's full store+reload round-trips (priced by the plan as
    // Reference glue) for raw-f32 reads folded into this kernel: the A
    // tile arrives unquantized (+ a residual tile and per-k gamma/beta
    // strips), the stats pass streams each block's rows once, and the
    // tail re-reads its columns raw before the f32 store.
    if chain.prologue.is_some() || chain.stitch_epilogue.is_some() {
        let bw = dev.dram_bandwidth;
        let trips_of = |s: Stmt| {
            placement
                .paths
                .iter()
                .find(|(st, _)| *st == s)
                .map(|_| placement.block_trips(chain, cand, s) as f64 * nb)
                .unwrap_or(nb)
        };
        let tm = cand.tiles[0] as f64;
        if let Some(p) = chain.prologue {
            let a_trips = trips_of(Stmt::Load(TensorRef::Input(0)));
            let tk = cand.tiles[1] as f64;
            t_mem += tm * tk * (4.0 - esz) * a_trips / bw;
            if p.residual {
                t_mem += tm * tk * 4.0 * a_trips / bw;
            }
            if p.affine {
                t_mem += 2.0 * tk * 4.0 * a_trips / bw;
            }
            let d0 = chain.dims[0] as f64;
            let passes = if p.residual { 2.0 } else { 1.0 };
            t_mem += tm * d0 * 4.0 * passes * nb / bw;
        }
        if let Some(t) = chain.stitch_epilogue {
            let s_trips = trips_of(Stmt::Store);
            let tn = *cand.tiles.last().unwrap() as f64;
            t_mem += tm * tn * (4.0 - esz) * s_trips / bw;
            match t.residual {
                mcfuser_ir::ResidualSource::External => {
                    t_mem += tm * tn * 4.0 * s_trips / bw;
                }
                mcfuser_ir::ResidualSource::PrologueOut => {
                    let passes = if chain.prologue.map(|p| p.residual).unwrap_or(false) {
                        2.0
                    } else {
                        1.0
                    };
                    t_mem += tm * tn * 4.0 * passes * s_trips / bw;
                    t_mem += 2.0 * tn * 4.0 * s_trips / bw;
                }
            }
            if t.layer_norm && t.affine {
                t_mem += 2.0 * tn * 4.0 * s_trips / bw;
            }
        }
    }

    if !opts.include_compute {
        t_comp = 0.0;
    }
    let alpha = if opts.include_alpha {
        (nb + dev.num_sms as f64) / nb
    } else {
        1.0
    };
    let total = (t_mem + t_comp) * alpha;
    Ok(PerfEstimate {
        t_mem,
        t_comp,
        alpha,
        total,
        blocks,
    })
}

/// Estimate, mapping structural failures to `+∞` (convenient for sorting
/// populations in Algorithm 1).
pub fn estimate_or_inf(chain: &ChainSpec, cand: &Candidate, dev: &DeviceSpec) -> f64 {
    estimate(chain, cand, dev)
        .map(|e| e.total)
        .unwrap_or(f64::INFINITY)
}

/// [`estimate_or_inf`] with explicit model options.
pub fn estimate_or_inf_with(
    chain: &ChainSpec,
    cand: &Candidate,
    dev: &DeviceSpec,
    opts: &ModelOptions,
) -> f64 {
    estimate_with(chain, cand, dev, opts)
        .map(|e| e.total)
        .unwrap_or(f64::INFINITY)
}

/// Operational intensity φ of a tiled matmul — the left axis of Fig. 2:
/// `φ = 2·TM·TN·K / (2·TM·TN + TM·K + TN·K)` (FLOPs per element moved;
/// multiply by the element size to get FLOPs per byte).
pub fn matmul_tile_intensity(tile_m: u64, tile_n: u64, k: u64) -> f64 {
    let (tm, tn, kk) = (tile_m as f64, tile_n as f64, k as f64);
    2.0 * tm * tn * kk / (2.0 * tm * tn + tm * kk + tn * kk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_tile::TilingExpr;

    fn chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 512, 256, 64, 128)
    }

    fn cand(expr: &str, tiles: Vec<u64>) -> Candidate {
        Candidate::new(TilingExpr::parse(expr, &chain()).unwrap(), tiles)
    }

    #[test]
    fn estimate_is_finite_and_positive() {
        let c = chain();
        let e = estimate(&c, &cand("mhnk", vec![64, 32, 64, 32]), &DeviceSpec::a100()).unwrap();
        assert!(e.total > 0.0 && e.total.is_finite());
        assert!(e.t_mem > 0.0);
        assert!(e.t_comp > 0.0);
        assert!(e.alpha >= 1.0);
    }

    #[test]
    fn alpha_decreases_with_more_blocks() {
        let c = chain();
        let few = estimate(
            &c,
            &cand("mhnk", vec![512, 32, 64, 128]),
            &DeviceSpec::a100(),
        )
        .unwrap();
        let many = estimate(&c, &cand("mhnk", vec![32, 32, 64, 16]), &DeviceSpec::a100()).unwrap();
        assert!(few.blocks < many.blocks);
        assert!(few.alpha > many.alpha);
    }

    #[test]
    fn dead_loop_hoisting_reduces_t_mem() {
        let c = chain();
        // k covered by one tile (64): LA/LB loaded once per block instead
        // of per n-iteration.
        let hoisted =
            estimate(&c, &cand("mhnk", vec![64, 64, 64, 32]), &DeviceSpec::a100()).unwrap();
        let split = estimate(&c, &cand("mhnk", vec![64, 16, 64, 32]), &DeviceSpec::a100()).unwrap();
        // Same tile volume for A per load × more trips → more traffic.
        assert!(
            hoisted.t_mem < split.t_mem,
            "{} !< {}",
            hoisted.t_mem,
            split.t_mem
        );
    }

    #[test]
    fn estimate_or_inf_on_unplaceable() {
        // Hand-build a bogus expression whose related loops diverge:
        // Seq of two loops both containing… actually chains always place,
        // so check the happy path maps to a finite value instead.
        let c = chain();
        let v = estimate_or_inf(&c, &cand("mhnk", vec![64, 32, 64, 32]), &DeviceSpec::a100());
        assert!(v.is_finite());
    }

    #[test]
    fn tile_intensity_monotone_in_k() {
        let lo = matmul_tile_intensity(256, 256, 16);
        let hi = matmul_tile_intensity(256, 256, 1024);
        assert!(hi > lo);
        // K=1 degenerate case from the paper's §I: ratio collapses to ~2.
        let tiny = matmul_tile_intensity(256, 256, 1);
        assert!(tiny < 2.0);
    }

    #[test]
    fn paper_phi_value_for_tile_256() {
        // With TM=TN=256, K=1024 the formula yields φ = 204.8 ops/element,
        // the same order as the "227" the paper quotes for K=1024 in §I
        // (the paper's constant folds in its own tile/byte conventions).
        let phi = matmul_tile_intensity(256, 256, 1024);
        assert!((phi - 204.8).abs() < 0.1, "phi {phi}");
    }

    #[test]
    fn masked_softmax_costs_more_than_plain() {
        // The mask tile is extra global traffic the model must see.
        let plain = ChainSpec::attention("s", 8, 512, 512, 64, 64);
        let masked = ChainSpec::masked_attention("sm", 8, 512, 512, 64, 64);
        let cd = |c: &ChainSpec| {
            Candidate::new(TilingExpr::parse("mhnk", c).unwrap(), vec![64, 32, 64, 32])
        };
        let dev = DeviceSpec::a100();
        let a = estimate(&plain, &cd(&plain), &dev).unwrap();
        let b = estimate(&masked, &cd(&masked), &dev).unwrap();
        assert!(b.t_mem > a.t_mem, "{} !> {}", b.t_mem, a.t_mem);
    }

    #[test]
    fn bias_traffic_is_accounted() {
        let plain = chain();
        let mut biased = chain();
        biased.biases = vec![true, true];
        let cd = cand("mhnk", vec![64, 32, 64, 32]);
        let dev = DeviceSpec::a100();
        let a = estimate(&plain, &cd, &dev).unwrap();
        let b = estimate(&biased, &cd, &dev).unwrap();
        assert!(b.t_mem > a.t_mem);
    }

    #[test]
    fn stitched_traffic_is_accounted() {
        // The stitched kernel moves strictly more bytes than its twin
        // (raw f32 A, residual tile, stats pass, tail re-reads) — the
        // saving shows up at plan level where the glue steps disappear.
        let mut st = ChainSpec::gemm_chain("ffn", 1, 512, 64, 256, 256);
        st.prologue = Some(mcfuser_ir::PrologueSpec {
            residual: true,
            affine: true,
            a_half: false,
            eps: 1e-5,
        });
        st.stitch_epilogue = Some(mcfuser_ir::EpilogueStitch {
            residual: mcfuser_ir::ResidualSource::PrologueOut,
            layer_norm: true,
            affine: true,
            eps: 1e-5,
        });
        let twin = st.unstitched();
        let cd = Candidate::new(
            TilingExpr::parse("mhnk", &st).unwrap(),
            vec![64, 32, 64, 32],
        );
        let dev = DeviceSpec::a100();
        let a = estimate(&st, &cd, &dev).unwrap();
        let b = estimate(&twin, &cd, &dev).unwrap();
        assert!(a.t_mem > b.t_mem, "{} !> {}", a.t_mem, b.t_mem);
        assert_eq!(a.t_comp, b.t_comp);
    }

    #[test]
    fn estimates_deterministic() {
        let c = chain();
        let cd = cand("mn(k,h)", vec![64, 32, 64, 32]);
        let a = estimate(&c, &cd, &DeviceSpec::a100()).unwrap();
        let b = estimate(&c, &cd, &DeviceSpec::a100()).unwrap();
        assert_eq!(a, b);
    }
}
