//! Search-space pruning — the four guidelines of §III-C.
//!
//! * **Rule 1 (deduplication)**: output-spatial loops bind to `blockIdx`;
//!   expressions sharing a per-block sub-tiling expression are equivalent
//!   (`mhnk ≡ mnkh → "nk"`).
//! * **Rule 2 (partial-tile blow-up)**: drop per-block programs in which a
//!   reduction loop encloses a spatial loop of the tensor it accumulates —
//!   those cache one partial tile per spatial iteration (Fig. 6(b)) and
//!   overwhelm shared memory.
//! * **Rule 3 (padding)**: for power-of-two dimensions only divisor tiles
//!   are kept; otherwise per-axis padding must stay below 5 %.
//! * **Rule 4 (shared-memory limit)**: Eq. 1 estimate must fit
//!   `1.2 × Shm_max`.
//!
//! The paper reports the cascade `1.09×10⁸ → −80 % → −40 % → −99 % →
//! −40 % → ≈10⁴` for the running example; [`PruneStats`] records the same
//! waterfall. Our Rule-1/2 equivalence is slightly *stronger* than the
//! paper's (see DESIGN.md): we find 2 equivalence classes where the paper
//! reports 5 → 3, because we canonicalize flat and deep expressions that
//! lower to identical per-block programs.
//!
//! Rules 1–3 shrink the *factors* of the space (expressions and per-axis
//! tile domains); Rule 4 is evaluated as a parallel scan over the Rule-3
//! tile grid and becomes the survivor index of the returned
//! [`CandidateSpace`]. No candidate `Vec` is ever materialized and there
//! is no cap: `PruneStats::after_rule4` is the exact count of candidates
//! reachable by index.
//!
//! For grids past [`FRONTIER_MIN_GRID`](crate::FRONTIER_MIN_GRID) the
//! scan exploits Eq. 1's monotonicity (the estimate is a sum of
//! `tileᵢ · tileⱼ` products, non-decreasing in every tile extent): the
//! survivors of each fixed setting of the slow axes form a *prefix* of
//! the fastest axis's ascending domain, so one binary search per row
//! replaces a dense row sweep — `O(surface · log)` estimates instead of
//! `O(volume)`, with a bit-identical survivor index
//! (proptest-verified). `after_rule4` stays exact on both paths.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;
use mcfuser_sim::DeviceSpec;
use mcfuser_tile::{accumulator_instances, Candidate, TilingExpr};

use crate::space::{CandidateSpace, SearchSpace};

/// Candidate counts after each pruning rule (the Fig. 7 waterfall).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Full space size.
    pub original: u128,
    /// After Rule 1 (expression dedup).
    pub after_rule1: u128,
    /// After Rule 2 (partial-tile classes dropped).
    pub after_rule2: u128,
    /// After Rule 3 (padding filter on tile sizes).
    pub after_rule3: u128,
    /// After Rule 4 (shared-memory estimate filter). Exactly the number
    /// of candidates the pruned space can address by index.
    pub after_rule4: u128,
    /// Expression counts along the way.
    pub exprs_original: usize,
    /// Distinct per-block classes after Rule 1.
    pub exprs_rule1: usize,
    /// Classes surviving Rule 2.
    pub exprs_rule2: usize,
}

/// Maximum padding overhead Rule 3 tolerates for non-power-of-two dims.
pub const MAX_PADDING_RATIO: f64 = 0.05;

/// Apply Rule 3 to one axis' tile options. When every option exceeds the
/// padding budget (awkward extents like 100), the least-padded option is
/// kept anyway — a compiler must still emit a kernel. An empty `options`
/// slice yields an empty domain; the tuner reports that as a structured
/// [`TuneError::EmptySearchSpace`](crate::TuneError::EmptySearchSpace)
/// naming the axis instead of failing confusingly downstream.
pub fn rule3_tiles(extent: u64, options: &[u64]) -> Vec<u64> {
    let pow2 = extent.is_power_of_two();
    let padding = |t: u64| -> f64 {
        let trips = extent.div_ceil(t);
        (trips * t) as f64 / extent as f64 - 1.0
    };
    let kept: Vec<u64> = options
        .iter()
        .copied()
        .filter(|&t| {
            if t >= extent {
                // A single (possibly padded) tile covering the dim is kept
                // when its own padding is acceptable.
                return padding(t) <= MAX_PADDING_RATIO;
            }
            if pow2 {
                extent.is_multiple_of(t)
            } else {
                padding(t) <= MAX_PADDING_RATIO
            }
        })
        .collect();
    if !kept.is_empty() {
        return kept;
    }
    options
        .iter()
        .copied()
        .min_by(|&a, &b| padding(a).total_cmp(&padding(b)))
        .into_iter()
        .collect()
}

/// Rule-2 structural test on one expression class: with every block loop
/// live, does any accumulator need more than one tile instance?
pub fn rule2_ok(chain: &ChainSpec, expr: &TilingExpr) -> bool {
    // Representative tiles: smallest option per axis so every loop has
    // trips > 1 wherever possible.
    let tiles: Vec<u64> = (0..chain.num_axes())
        .map(|a| {
            let e = chain.axis_extent(a);
            if e <= 16 {
                e.max(1)
            } else {
                16
            }
        })
        .collect();
    let cand = Candidate::new(expr.clone(), tiles);
    (0..chain.num_ops()).all(|op| accumulator_instances(chain, &cand, op) == 1)
}

/// Apply Rules 1–3 (the factor-shrinking rules): representative
/// expressions per equivalence class and the filtered per-axis tile
/// domains, plus the waterfall up to `after_rule3`.
pub(crate) fn rules123(
    chain: &ChainSpec,
    space: &SearchSpace,
) -> (Vec<TilingExpr>, Vec<Vec<u64>>, PruneStats) {
    let mut stats = PruneStats {
        original: space.count(),
        exprs_original: space.exprs.len(),
        ..Default::default()
    };
    let tile_combos_full: u128 = space.tile_domains.iter().map(|d| d.len() as u128).product();

    // ---- Rule 1: dedup by per-block sub-expression ----------------------
    let mut classes: FxHashMap<String, TilingExpr> = FxHashMap::default();
    for e in &space.exprs {
        // The sub-expression is tile-independent; use a unit-tile dummy.
        let dummy = Candidate::new(e.clone(), vec![16; chain.num_axes()]);
        let key = dummy.dedup_key(chain);
        classes.entry(key).or_insert_with(|| e.clone());
    }
    let mut reps: Vec<TilingExpr> = classes.into_values().collect();
    // Deterministic order for reproducibility.
    reps.sort_by_key(|e| e.display(chain));
    stats.exprs_rule1 = reps.len();
    stats.after_rule1 = reps.len() as u128 * tile_combos_full;

    // ---- Rule 2: drop partial-tile classes -------------------------------
    reps.retain(|e| rule2_ok(chain, e));
    stats.exprs_rule2 = reps.len();
    stats.after_rule2 = reps.len() as u128 * tile_combos_full;

    // ---- Rule 3: padding filter per axis ---------------------------------
    let tile_domains: Vec<Vec<u64>> = space
        .tile_domains
        .iter()
        .enumerate()
        .map(|(a, opts)| rule3_tiles(chain.axis_extent(a), opts))
        .collect();
    let combos_r3: u128 = tile_domains.iter().map(|d| d.len() as u128).product();
    stats.after_rule3 = reps.len() as u128 * combos_r3;

    (reps, tile_domains, stats)
}

/// Run the full pruning cascade. Rule 4 becomes the lazy survivor index
/// of the returned [`CandidateSpace`] — exact, parallel, uncapped.
pub fn prune(chain: &ChainSpec, dev: &DeviceSpec, space: &SearchSpace) -> CandidateSpace {
    let (reps, tile_domains, stats) = rules123(chain, space);
    CandidateSpace::build(chain, reps, tile_domains, Some(dev.smem_per_block), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_tile::rule4_fits;

    fn paper_chain() -> ChainSpec {
        ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512)
    }

    #[test]
    fn waterfall_shape_matches_paper() {
        let chain = paper_chain();
        let dev = DeviceSpec::a100();
        let space = SearchSpace::generate(&chain);
        let pruned = prune(&chain, &dev, &space);
        let s = &pruned.stats;
        assert_eq!(s.original, 109_051_904);
        // Rule 1 must remove ≥ 75 % of expressions (paper: 26 → 5).
        assert!(s.exprs_rule1 <= 6, "rule1 classes {}", s.exprs_rule1);
        assert!(s.exprs_rule2 <= s.exprs_rule1);
        assert!(s.exprs_rule2 >= 1);
        // Rule 3 removes ~99 % of tile combinations.
        assert!(
            (s.after_rule3 as f64) < 0.05 * s.after_rule2 as f64,
            "rule3: {} vs {}",
            s.after_rule3,
            s.after_rule2
        );
        // Rule 4 removes a further chunk.
        assert!(s.after_rule4 < s.after_rule3);
        // Final space is ~10³–10⁵ (paper: ≈10⁴).
        assert!(s.after_rule4 >= 100, "{}", s.after_rule4);
        assert!(s.after_rule4 <= 100_000, "{}", s.after_rule4);
    }

    #[test]
    fn rule3_power_of_two_keeps_divisors_only() {
        let opts = mcfuser_tile::tile_options(1024);
        let kept = rule3_tiles(1024, &opts);
        assert!(kept.iter().all(|t| 1024 % t == 0));
        // divisors of 1024 that are multiples of 16 and ≤ 1024:
        // 16, 32, 64, 128, 256, 512, 1024.
        assert_eq!(kept, vec![16, 32, 64, 128, 256, 512, 1024]);
    }

    #[test]
    fn rule3_non_pow2_allows_small_padding() {
        // 96 is not a power of two: 16, 32, 48, 96 divide; 96/80 pads 20 %.
        let opts = mcfuser_tile::tile_options(96);
        let kept = rule3_tiles(96, &opts);
        assert!(kept.contains(&16));
        assert!(kept.contains(&32));
        assert!(kept.contains(&48));
        assert!(kept.contains(&96));
        assert!(!kept.contains(&80));
        assert!(!kept.contains(&64)); // ceil(96/64)*64 = 128 → 33 % padding
    }

    #[test]
    fn rule3_empty_options_stay_empty() {
        // The upstream condition behind EmptySearchSpace { axis }: no
        // candidate tile sizes at all for an axis.
        assert!(rule3_tiles(64, &[]).is_empty());
    }

    #[test]
    fn rule2_rejects_kn_class() {
        let chain = paper_chain();
        let kn = TilingExpr::parse("mhkn", &chain).unwrap();
        let nk = TilingExpr::parse("mhnk", &chain).unwrap();
        assert!(!rule2_ok(&chain, &kn));
        assert!(rule2_ok(&chain, &nk));
    }

    #[test]
    fn candidates_all_pass_rule4() {
        let chain = paper_chain();
        let dev = DeviceSpec::a100();
        let space = SearchSpace::generate(&chain);
        let pruned = prune(&chain, &dev, &space);
        assert!(!pruned.is_empty());
        for c in pruned.iter() {
            assert!(rule4_fits(&chain, &c, dev.smem_per_block));
        }
    }

    #[test]
    fn smaller_device_prunes_more() {
        let chain = paper_chain();
        let space = SearchSpace::generate(&chain);
        let a = prune(&chain, &DeviceSpec::a100(), &space);
        let r = prune(&chain, &DeviceSpec::rtx3080(), &space);
        assert!(r.stats.after_rule4 <= a.stats.after_rule4);
    }

    #[test]
    fn attention_space_survives_pruning() {
        let chain = ChainSpec::attention("s", 12, 512, 512, 64, 64);
        let space = SearchSpace::generate(&chain);
        let pruned = prune(&chain, &DeviceSpec::a100(), &space);
        assert!(!pruned.is_empty());
    }

    #[test]
    fn no_cap_every_candidate_reachable() {
        // The old materialization silently clipped at a cap; the lazy
        // space must address its full extent.
        let chain = paper_chain();
        let space = SearchSpace::generate(&chain);
        let pruned = prune(&chain, &DeviceSpec::a100(), &space);
        assert_eq!(pruned.len() as u128, pruned.stats.after_rule4);
        let last = pruned.candidate(pruned.len() - 1);
        assert!(rule4_fits(&chain, &last, DeviceSpec::a100().smem_per_block));
    }
}
