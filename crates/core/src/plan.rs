//! The compile-time / run-time boundary: [`ExecutablePlan`].
//!
//! A [`CompiledModel`] is a *tuning* artifact — it remembers how each
//! fused chain was found and what it cost. Serving wants none of that
//! history; it wants a frozen, immutable recipe that executes a request
//! without re-deriving anything. [`CompiledModel::plan`] performs that
//! packaging once:
//!
//! * the **step list** — the topological execution order with every
//!   fused kernel's program, input bindings, and transpose flags
//!   resolved ([`Step::Fused`]), and every remaining operator pinned to
//!   the reference interpreter ([`Step::Reference`]);
//! * the **input binding table** — activation inputs addressable by
//!   *name* as well as [`NodeId`], with expected shapes and storage
//!   dtype for up-front validation;
//! * the **buffer plan** — per-node slot sizes and last-use liveness,
//!   so a request recycles intermediate buffers the moment their last
//!   consumer has run instead of keeping every node's value alive.
//!
//! Execution failures are structured [`ExecError`]s (mirroring the
//! [`TuneError`](crate::TuneError) redesign): a serving layer can match
//! on `MissingInput` vs `ShapeMismatch` instead of string-matching a
//! `Box<dyn Error>`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHashSet};

use mcfuser_ir::{Graph, GraphError, NodeId, Op};
use mcfuser_sim::{
    BufferArena, BufferRole, DType, DeviceSpec, ExecBackend, HostTensor, TensorStorage, TileProgram,
};

use crate::engine::CompiledModel;

/// Structured execution failure of a plan or runtime request.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The runtime has no plan registered under this name.
    UnknownModel {
        /// Requested model name.
        name: String,
    },
    /// A declared activation input was not supplied.
    MissingInput {
        /// Model name.
        model: String,
        /// The missing input's name.
        name: String,
    },
    /// The caller supplied an input the model does not declare.
    UnknownInput {
        /// Model name.
        model: String,
        /// The unrecognized input name (or node id, rendered).
        name: String,
    },
    /// A supplied tensor does not match the declared input shape.
    ShapeMismatch {
        /// Model name.
        model: String,
        /// The input (node) name.
        node: String,
        /// Declared shape.
        expected: Vec<u64>,
        /// Supplied shape.
        got: Vec<u64>,
    },
    /// A supplied tensor was tagged with the wrong storage precision.
    DTypeMismatch {
        /// Model name.
        model: String,
        /// The input (node) name.
        node: String,
        /// The model's storage precision.
        expected: DType,
        /// The tag the caller attached.
        got: DType,
    },
    /// The graph handed to [`CompiledModel::plan`] is not the graph the
    /// model was compiled from (or the pair is internally inconsistent).
    ModelGraphMismatch {
        /// Model name.
        model: String,
        /// Graph name.
        graph: String,
        /// What did not line up.
        detail: String,
    },
    /// A chain's lowered program failed the static verifier while the
    /// plan was being frozen (see `mcfuser_sim::verify`). Every program
    /// a plan would serve is re-checked here — the last gate before
    /// execution — so a model carrying a corrupted or hand-mutated
    /// kernel is rejected instead of launched.
    Verify {
        /// Model name.
        model: String,
        /// The fused chain's name.
        chain: String,
        /// The rendered `VerifyError`.
        detail: String,
    },
    /// A fused kernel failed inside the functional interpreter.
    Kernel {
        /// Model name.
        model: String,
        /// The fused chain's name.
        chain: String,
        /// Interpreter error.
        detail: String,
    },
    /// A reference-executed operator failed.
    Reference {
        /// Model name.
        model: String,
        /// The failing node's name.
        node: String,
        /// Reference-evaluator error.
        detail: String,
    },
    /// The batching admission queue is full — backpressure. The request
    /// was rejected *before* enqueueing; retry later or shed load.
    Overloaded {
        /// Model name.
        model: String,
        /// The queue capacity that was exhausted
        /// ([`BatchPolicy::queue_cap`](crate::BatchPolicy)).
        queue_cap: usize,
    },
    /// The request's deadline elapsed while it waited in the admission
    /// queue. Expiry happens at batch-formation time, *before* any
    /// execution is wasted on a result nobody is waiting for.
    DeadlineExceeded {
        /// Model name.
        model: String,
        /// The deadline the request carried.
        deadline: Duration,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownModel { name } => {
                write!(f, "no model named '{name}' is registered")
            }
            ExecError::MissingInput { model, name } => {
                write!(f, "model '{model}': input '{name}' was not supplied")
            }
            ExecError::UnknownInput { model, name } => {
                write!(f, "model '{model}' declares no input '{name}'")
            }
            ExecError::ShapeMismatch {
                model,
                node,
                expected,
                got,
            } => write!(
                f,
                "model '{model}': input '{node}' expects shape {expected:?}, got {got:?}"
            ),
            ExecError::DTypeMismatch {
                model,
                node,
                expected,
                got,
            } => write!(
                f,
                "model '{model}': input '{node}' expects dtype {expected:?}, got {got:?}"
            ),
            ExecError::ModelGraphMismatch {
                model,
                graph,
                detail,
            } => write!(
                f,
                "compiled model '{model}' does not fit graph '{graph}': {detail}"
            ),
            ExecError::Verify {
                model,
                chain,
                detail,
            } => write!(
                f,
                "model '{model}': fused chain '{chain}' failed static verification: {detail}"
            ),
            ExecError::Kernel {
                model,
                chain,
                detail,
            } => write!(f, "model '{model}': fused chain '{chain}' failed: {detail}"),
            ExecError::Reference {
                model,
                node,
                detail,
            } => write!(f, "model '{model}': operator '{node}' failed: {detail}"),
            ExecError::Overloaded { model, queue_cap } => write!(
                f,
                "model '{model}': admission queue full ({queue_cap} pending requests)"
            ),
            ExecError::DeadlineExceeded { model, deadline } => write!(
                f,
                "model '{model}': request deadline of {deadline:?} expired while queued"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Options of one inference request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Seed materializing the model's weights (deterministic per seed).
    pub seed: u64,
    /// Execution backend override for this request; `None` runs the
    /// plan's own backend (see [`ExecutablePlan::backend`]).
    pub backend: Option<ExecBackend>,
}

impl RunOptions {
    /// Options with an explicit weight seed.
    pub fn seeded(seed: u64) -> Self {
        RunOptions {
            seed,
            ..RunOptions::default()
        }
    }

    /// Builder-style backend override (e.g. force the interpreter
    /// oracle for one request).
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = Some(backend);
        self
    }
}

#[derive(Debug, Clone)]
struct TaggedTensor {
    tensor: HostTensor,
    dtype: Option<DType>,
}

/// The tensors of one inference request, addressable by input *name*
/// (preferred) or raw [`NodeId`] (compatibility with graph-level code).
///
/// ```
/// use mcfuser_core::InputSet;
/// use mcfuser_sim::HostTensor;
///
/// let inputs = InputSet::new()
///     .with("x", HostTensor::zeros(&[1, 64, 32]));
/// assert_eq!(inputs.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InputSet {
    by_name: FxHashMap<String, TaggedTensor>,
    by_node: FxHashMap<NodeId, TaggedTensor>,
}

impl InputSet {
    /// An empty input set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insert by name.
    pub fn with(mut self, name: impl Into<String>, tensor: HostTensor) -> Self {
        self.insert(name, tensor);
        self
    }

    /// Bind a tensor to a named input.
    pub fn insert(&mut self, name: impl Into<String>, tensor: HostTensor) {
        self.by_name.insert(
            name.into(),
            TaggedTensor {
                tensor,
                dtype: None,
            },
        );
    }

    /// Bind a tensor and declare the storage precision it was produced
    /// in. A tag differing from the model's precision is rejected with
    /// [`ExecError::DTypeMismatch`] instead of silently quantizing.
    pub fn insert_typed(&mut self, name: impl Into<String>, tensor: HostTensor, dtype: DType) {
        self.by_name.insert(
            name.into(),
            TaggedTensor {
                tensor,
                dtype: Some(dtype),
            },
        );
    }

    /// Bind a tensor to an input by graph node id.
    pub fn insert_node(&mut self, node: NodeId, tensor: HostTensor) {
        self.by_node.insert(
            node,
            TaggedTensor {
                tensor,
                dtype: None,
            },
        );
    }

    /// Build a set from a `NodeId → tensor` map (the pre-plan calling
    /// convention — handy when the caller already addresses graph nodes
    /// by id, e.g. code migrating from the removed
    /// `FusionEngine::execute`).
    pub fn from_node_values(map: &FxHashMap<NodeId, HostTensor>) -> Self {
        InputSet {
            by_name: FxHashMap::default(),
            by_node: map
                .iter()
                .map(|(&n, t)| {
                    (
                        n,
                        TaggedTensor {
                            tensor: t.clone(),
                            dtype: None,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Number of bound tensors.
    pub fn len(&self) -> usize {
        self.by_name.len() + self.by_node.len()
    }

    /// Whether nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty() && self.by_node.is_empty()
    }

    fn lookup(&self, name: &str, node: NodeId) -> Option<&TaggedTensor> {
        self.by_name.get(name).or_else(|| self.by_node.get(&node))
    }
}

/// The named output tensors of one inference request, in graph output
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct Outputs {
    entries: Vec<(String, NodeId, HostTensor)>,
}

impl Outputs {
    pub(crate) fn from_entries(entries: Vec<(String, NodeId, HostTensor)>) -> Self {
        Outputs { entries }
    }

    /// Look up an output by node name.
    pub fn get(&self, name: &str) -> Option<&HostTensor> {
        self.entries
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, t)| t)
    }

    /// The first declared output.
    pub fn primary(&self) -> &HostTensor {
        &self.entries[0].2
    }

    /// Iterate `(name, tensor)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &HostTensor)> {
        self.entries.iter().map(|(n, _, t)| (n.as_str(), t))
    }

    /// Number of outputs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the model declared no outputs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One declared activation input of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct InputBinding {
    /// Input name (the graph node's name).
    pub name: String,
    /// Graph node id (the compatibility key).
    pub node: NodeId,
    /// Expected tensor shape.
    pub shape: Vec<u64>,
}

/// One materialized node value during request execution.
///
/// The slot table used to hold owned `HostTensor`s only, which forced
/// `bind_inputs` to clone every request input up front. Slots are now
/// `Cow`-style: request inputs stay **borrowed** from the caller's
/// [`InputSet`], weights served from the runtime's per-(plan, seed)
/// cache are **shared** [`Arc`]s, and only values actually computed
/// during the request are **owned** (and recycled into the arena at
/// their last use).
#[derive(Debug)]
pub(crate) enum Value<'a> {
    /// Borrowed straight from the request's `InputSet` — zero-copy.
    Borrowed(&'a HostTensor),
    /// Shared from the runtime weight cache.
    Cached(Arc<HostTensor>),
    /// Computed during this request; recyclable into the arena.
    Owned(HostTensor),
}

impl Value<'_> {
    pub(crate) fn tensor(&self) -> &HostTensor {
        match self {
            Value::Borrowed(t) => t,
            Value::Cached(t) => t,
            Value::Owned(t) => t,
        }
    }

    fn into_tensor(self) -> HostTensor {
        match self {
            Value::Borrowed(t) => t.clone(),
            Value::Cached(t) => (*t).clone(),
            Value::Owned(t) => t,
        }
    }
}

/// Weight tensors of one `(plan, seed)` pair, derived lazily and shared
/// across requests. Owned by the runtime's bounded weight cache (see
/// [`RuntimeStats`](crate::RuntimeStats) for the hit/eviction counters);
/// execution paths receive an `Option<&WeightStore>` and fall back to
/// per-request derivation without one.
#[derive(Debug, Default)]
pub struct WeightStore {
    map: Mutex<FxHashMap<usize, Arc<HostTensor>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl WeightStore {
    /// A store that reports hits/misses into the given shared counters
    /// (the runtime-wide totals, so eviction never loses counts).
    pub(crate) fn with_counters(hits: Arc<AtomicU64>, misses: Arc<AtomicU64>) -> Self {
        WeightStore {
            map: Mutex::new(FxHashMap::default()),
            hits,
            misses,
        }
    }

    /// The weight tensor of `node`, deriving it on first use. Derivation
    /// runs outside the lock — racing requests may derive the same
    /// tensor twice, but [`mcfuser_ir::init_weight`] is deterministic,
    /// so the first insert wins and both see identical values.
    pub(crate) fn get_or_derive(&self, graph: &Graph, node: NodeId, seed: u64) -> Arc<HostTensor> {
        if let Some(t) = self.map.lock().get(&node.0) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return t.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let derived = Arc::new(mcfuser_ir::init_weight(graph, node, seed));
        self.map.lock().entry(node.0).or_insert(derived).clone()
    }

    /// Number of weight tensors currently materialized.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether no weight has been derived yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One frozen execution step of a plan, in topological order.
#[derive(Debug, Clone)]
pub enum Step {
    /// Run a fused kernel on the functional interpreter.
    Fused {
        /// The fused chain's name (diagnostics).
        chain: String,
        /// The lowered tile program.
        program: Arc<TileProgram>,
        /// Graph nodes feeding the kernel, in program-buffer order.
        data_inputs: Vec<NodeId>,
        /// Per data input: stored transposed relative to chain layout.
        transposed: Vec<bool>,
        /// The node whose value the kernel produces.
        output: NodeId,
        /// The produced tensor's graph shape.
        out_shape: Vec<u64>,
        /// The kernel's measured device time (virtual seconds).
        kernel_time: f64,
        /// Global-memory bytes the kernel moves per launch.
        bytes: f64,
    },
    /// Evaluate one operator on the CPU reference (weights, and the
    /// non-fused remainder priced by the fallback backend).
    Reference {
        /// The node to evaluate.
        node: NodeId,
        /// The fallback backend's device time for this operator
        /// (0 for weight materialization).
        time: f64,
        /// Approximate bytes moved (inputs read + output written).
        bytes: f64,
    },
}

/// How a plan's per-request work splits between fused kernels and
/// reference-interpreted operators — the observable effect of
/// prologue/epilogue stitching (a stitched plan moves elementwise
/// round trips from the `reference_*` columns into its fused kernels).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepBreakdown {
    /// Fused-kernel steps per request.
    pub fused_steps: usize,
    /// Reference-interpreter steps per request (weights included).
    pub reference_steps: usize,
    /// Reference steps that are elementwise/normalization glue
    /// ([`Op::is_elementwise`]) — the activation round trips stitching
    /// exists to eliminate.
    pub reference_elementwise: usize,
    /// Global-memory bytes per request moved by fused kernels.
    pub fused_bytes: f64,
    /// Global-memory bytes per request moved by reference steps.
    pub reference_bytes: f64,
}

/// Per-node buffer sizing and liveness, computed once at plan time.
///
/// `release_after[s]` lists the nodes whose values have no consumer
/// after step `s` — execution recycles those buffers into the request's
/// arena immediately, so the peak number of live intermediates is
/// [`BufferPlan::peak_live`], not the node count.
#[derive(Debug, Clone)]
pub struct BufferPlan {
    slot_elems: Vec<u64>,
    release_after: Vec<Vec<NodeId>>,
    peak_live: usize,
    total_nodes: usize,
}

impl BufferPlan {
    /// Element count of a node's value slot.
    pub fn slot_elems(&self, node: NodeId) -> u64 {
        self.slot_elems[node.0]
    }

    pub(crate) fn release_after(&self, s: usize) -> &[NodeId] {
        &self.release_after[s]
    }

    /// Peak number of simultaneously materialized node values during one
    /// request (inputs, weights, and intermediates combined).
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total graph nodes (for comparison against [`BufferPlan::peak_live`]).
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }
}

/// A self-contained, immutable serving artifact: everything per-request
/// execution needs, frozen at plan time.
///
/// Produced by [`CompiledModel::plan`] (or
/// [`FusionEngine::compile_plan`](crate::FusionEngine::compile_plan)).
/// The plan is `Send + Sync`; requests execute from `&self` and are
/// deterministic per [`RunOptions::seed`].
#[derive(Debug, Clone)]
pub struct ExecutablePlan {
    pub(crate) name: String,
    pub(crate) graph: Graph,
    dtype: DType,
    inputs: Vec<InputBinding>,
    pub(crate) steps: Vec<Step>,
    fused_of: FxHashMap<NodeId, usize>,
    pub(crate) outputs: Vec<(String, NodeId)>,
    pub(crate) buffers: BufferPlan,
    virtual_time: f64,
    bytes_per_request: f64,
    pub(crate) device: DeviceSpec,
    pub(crate) backend: ExecBackend,
}

impl ExecutablePlan {
    /// The model name (the compiled graph's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The execution backend fused kernels run on by default
    /// (overridable per request via [`RunOptions::with_backend`]).
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Builder-style backend pin, e.g. an interpreter-oracle twin of a
    /// plan: `plan.clone().with_backend(ExecBackend::Interpreter)`.
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The model's storage precision; typed inputs must match it.
    pub fn model_dtype(&self) -> DType {
        self.dtype
    }

    /// The declared activation inputs.
    pub fn inputs(&self) -> &[InputBinding] {
        &self.inputs
    }

    /// The declared outputs as `(name, shape)` pairs.
    pub fn output_specs(&self) -> Vec<(String, Vec<u64>)> {
        self.outputs
            .iter()
            .map(|(n, id)| (n.clone(), self.graph.node(*id).shape.clone()))
            .collect()
    }

    /// The frozen step list.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of fused-kernel steps.
    pub fn fused_kernels(&self) -> usize {
        self.fused_of.len()
    }

    /// How this plan's steps and bytes split between fused kernels and
    /// the reference interpreter (see [`StepBreakdown`]).
    pub fn step_breakdown(&self) -> StepBreakdown {
        let mut b = StepBreakdown::default();
        for step in &self.steps {
            match step {
                Step::Fused { bytes, .. } => {
                    b.fused_steps += 1;
                    b.fused_bytes += bytes;
                }
                Step::Reference { node, bytes, .. } => {
                    b.reference_steps += 1;
                    b.reference_bytes += bytes;
                    if self.graph.node(*node).op.is_elementwise() {
                        b.reference_elementwise += 1;
                    }
                }
            }
        }
        b
    }

    /// The buffer plan (slot sizes + liveness).
    pub fn buffer_plan(&self) -> &BufferPlan {
        &self.buffers
    }

    /// The request's deterministic virtual latency: fused kernel times
    /// plus the fallback backend's per-operator times.
    pub fn virtual_time_per_request(&self) -> f64 {
        self.virtual_time
    }

    /// Approximate bytes one request moves through global memory.
    pub fn bytes_per_request(&self) -> f64 {
        self.bytes_per_request
    }

    /// The device the plan's kernels were tuned for (also prices widened
    /// batched launches — see [`BatchedPlan`](crate::BatchedPlan)).
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Execute one request. Equivalent to
    /// [`ExecutablePlan::execute_in`] with a throwaway arena.
    pub fn execute(&self, inputs: &InputSet, opts: RunOptions) -> Result<Outputs, ExecError> {
        let mut arena = BufferArena::new();
        self.execute_in(inputs, opts, &mut arena)
    }

    /// Execute one request, drawing and recycling intermediate buffers
    /// through a caller-provided arena (the hot path under a serving
    /// loop — see [`ModelRuntime`](crate::ModelRuntime)).
    pub fn execute_in(
        &self,
        inputs: &InputSet,
        opts: RunOptions,
        arena: &mut BufferArena,
    ) -> Result<Outputs, ExecError> {
        self.execute_cached(inputs, opts, arena, None)
    }

    /// [`ExecutablePlan::execute_in`] with an optional per-(plan, seed)
    /// weight store: `Op::Weight` reference steps resolve through the
    /// store instead of re-deriving the tensor from the seed on every
    /// request. The runtime's `infer`/`submit` paths always pass one.
    pub(crate) fn execute_cached(
        &self,
        inputs: &InputSet,
        opts: RunOptions,
        arena: &mut BufferArena,
        weights: Option<&WeightStore>,
    ) -> Result<Outputs, ExecError> {
        let mut values = self.bind_inputs(inputs)?;
        let empty: FxHashMap<NodeId, HostTensor> = FxHashMap::default();
        for (s, step) in self.steps.iter().enumerate() {
            match step {
                Step::Reference { node, .. } => {
                    let v = self.eval_reference(*node, &values, &empty, opts.seed, weights)?;
                    values[node.0] = Some(v);
                }
                Step::Fused { .. } => {
                    let backend = opts.backend.unwrap_or(self.backend);
                    self.run_fused_step(s, &mut values, arena, backend)?
                }
            }
            for node in &self.buffers.release_after[s] {
                if let Some(Value::Owned(t)) = values[node.0].take() {
                    arena.put(t.data);
                }
            }
        }
        // Move outputs out of the value table (it is dropped right
        // after); clone only when the same node is declared again later.
        Ok(Outputs {
            entries: self.collect_outputs(&mut values),
        })
    }

    /// Evaluate one reference step, serving `Op::Weight` nodes from the
    /// weight store when one is attached.
    pub(crate) fn eval_reference(
        &self,
        node: NodeId,
        values: &[Option<Value<'_>>],
        empty: &FxHashMap<NodeId, HostTensor>,
        seed: u64,
        weights: Option<&WeightStore>,
    ) -> Result<Value<'static>, ExecError> {
        if let Some(store) = weights {
            if matches!(self.graph.node(node).op, Op::Weight) {
                return Ok(Value::Cached(store.get_or_derive(&self.graph, node, seed)));
            }
        }
        mcfuser_ir::evaluate_node_with(
            &self.graph,
            node,
            &|n| values[n.0].as_ref().map(Value::tensor),
            empty,
            seed,
        )
        .map(Value::Owned)
        .map_err(|e| self.reference_error(node, e))
    }

    /// Drain the declared outputs from a value table into `(name, node,
    /// tensor)` entries, cloning only when a node is declared again
    /// later (or when the value is borrowed/shared rather than owned).
    pub(crate) fn collect_outputs(
        &self,
        values: &mut [Option<Value<'_>>],
    ) -> Vec<(String, NodeId, HostTensor)> {
        let mut entries = Vec::with_capacity(self.outputs.len());
        for (k, (name, id)) in self.outputs.iter().enumerate() {
            let declared_again = self.outputs[k + 1..].iter().any(|(_, id2)| id2 == id);
            let t = if declared_again {
                values[id.0]
                    .as_ref()
                    .expect("outputs are never released")
                    .tensor()
                    .clone()
            } else {
                values[id.0]
                    .take()
                    .expect("outputs are never released")
                    .into_tensor()
            };
            entries.push((name.clone(), *id, t));
        }
        entries
    }

    /// Run the fused step `steps[s]`: stage its data inputs into an
    /// arena-backed storage, execute the kernel, publish the output into
    /// the value table.
    fn run_fused_step(
        &self,
        s: usize,
        values: &mut [Option<Value<'_>>],
        arena: &mut BufferArena,
        backend: ExecBackend,
    ) -> Result<(), ExecError> {
        let Step::Fused {
            chain,
            program,
            data_inputs,
            transposed,
            output,
            out_shape,
            ..
        } = &self.steps[s]
        else {
            unreachable!("run_fused_step is only called on fused steps");
        };
        let mut st = TensorStorage::for_program_in(program, arena);
        for (j, &node) in data_inputs.iter().enumerate() {
            let src = values[node.0].as_ref().expect("topological order").tensor();
            // Transposition materializes a temporary; the common
            // non-transposed case copies straight into the arena buffer.
            // (Chain buffers are [batch, rows, cols]; graph tensors may
            // be flat 2-D with batch = 1 — staging is by element count.)
            let flipped;
            let data: &[f32] = if transposed.get(j).copied().unwrap_or(false) {
                flipped = src.transpose_last2();
                &flipped.data
            } else {
                &src.data
            };
            let dst = &mut st.tensors[j];
            if dst.data.len() != data.len() {
                return Err(ExecError::Kernel {
                    model: self.name.clone(),
                    chain: chain.clone(),
                    detail: format!(
                        "input {j} holds {} elements, kernel expects {}",
                        data.len(),
                        dst.data.len()
                    ),
                });
            }
            dst.data.copy_from_slice(data);
        }
        backend
            .executor()
            .execute_with_arena(program, &mut st, arena)
            .map_err(|e| ExecError::Kernel {
                model: self.name.clone(),
                chain: chain.clone(),
                detail: e.to_string(),
            })?;
        let out_data = std::mem::take(&mut st.tensors.last_mut().expect("output buffer").data);
        st.recycle(arena);
        values[output.0] = Some(Value::Owned(HostTensor::from_vec(out_shape, out_data)));
        Ok(())
    }

    /// Validate the request's inputs against the binding table and seed
    /// the value slots: missing inputs, undeclared inputs,
    /// declared-shape mismatches, and wrong dtype tags are all
    /// structured errors (the serving API's strict contract).
    ///
    /// The returned slots *borrow* the request tensors (`Cow`-style) —
    /// binding no longer clones each input; a fused step stages the
    /// borrowed data straight into its arena-backed kernel buffer.
    pub(crate) fn bind_inputs<'a>(
        &self,
        inputs: &'a InputSet,
    ) -> Result<Vec<Option<Value<'a>>>, ExecError> {
        for name in inputs.by_name.keys() {
            if !self.inputs.iter().any(|b| &b.name == name) {
                return Err(ExecError::UnknownInput {
                    model: self.name.clone(),
                    name: name.clone(),
                });
            }
        }
        for node in inputs.by_node.keys() {
            if !self.inputs.iter().any(|b| b.node == *node) {
                return Err(ExecError::UnknownInput {
                    model: self.name.clone(),
                    name: format!("node #{}", node.0),
                });
            }
        }
        let mut values: Vec<Option<Value<'a>>> =
            (0..self.graph.nodes.len()).map(|_| None).collect();
        for binding in &self.inputs {
            let tagged = inputs.lookup(&binding.name, binding.node).ok_or_else(|| {
                ExecError::MissingInput {
                    model: self.name.clone(),
                    name: binding.name.clone(),
                }
            })?;
            if let Some(dt) = tagged.dtype {
                if dt != self.dtype {
                    return Err(ExecError::DTypeMismatch {
                        model: self.name.clone(),
                        node: binding.name.clone(),
                        expected: self.dtype,
                        got: dt,
                    });
                }
            }
            if tagged.tensor.shape != binding.shape {
                return Err(ExecError::ShapeMismatch {
                    model: self.name.clone(),
                    node: binding.name.clone(),
                    expected: binding.shape.clone(),
                    got: tagged.tensor.shape.clone(),
                });
            }
            values[binding.node.0] = Some(Value::Borrowed(&tagged.tensor));
        }
        Ok(values)
    }

    fn reference_error(&self, node: NodeId, e: GraphError) -> ExecError {
        ExecError::Reference {
            model: self.name.clone(),
            node: self.graph.node(node).name.clone(),
            detail: e.to_string(),
        }
    }
}

impl CompiledModel {
    /// Freeze this compiled model against its source graph into a
    /// self-contained [`ExecutablePlan`]: topological step list, named
    /// input bindings, per-node shapes, and the buffer plan with
    /// last-use liveness — everything per-request execution would
    /// otherwise recompute.
    ///
    /// The binding table is name-keyed, so the graph's activation
    /// inputs must have unique names; duplicates are rejected as
    /// [`ExecError::ModelGraphMismatch`].
    pub fn plan(&self, graph: &Graph) -> Result<ExecutablePlan, ExecError> {
        let mismatch = |detail: String| ExecError::ModelGraphMismatch {
            model: self.name.clone(),
            graph: graph.name.clone(),
            detail,
        };
        if self.name != graph.name {
            return Err(mismatch("model and graph names differ".into()));
        }
        if self.graph_fingerprint != crate::engine::graph_fingerprint(graph) {
            return Err(mismatch(
                "graph structure differs from the one this model was compiled from".into(),
            ));
        }
        let n = graph.nodes.len();
        let in_range = |id: NodeId| id.0 < n;
        for cc in &self.chains {
            if !in_range(cc.output)
                || cc.nodes.iter().any(|&x| !in_range(x))
                || cc.data_inputs.iter().any(|&x| !in_range(x))
            {
                return Err(mismatch(format!(
                    "chain '{}' references nodes outside the graph",
                    cc.chain.name
                )));
            }
            // Execution stages data_inputs 1:1 onto the program's
            // input-role buffers (which the arena hands out unzeroed) —
            // the arities must agree exactly.
            let declared = cc
                .tuned
                .kernel
                .program
                .buffers
                .iter()
                .filter(|b| b.role == BufferRole::Input)
                .count();
            if declared != cc.data_inputs.len() {
                return Err(mismatch(format!(
                    "chain '{}' binds {} graph inputs to {} kernel input buffers",
                    cc.chain.name,
                    cc.data_inputs.len(),
                    declared
                )));
            }
            // Last gate before execution: every program this plan would
            // serve must pass the static verifier, whatever path it
            // arrived by (fresh tune, cache rehydration, deserialized
            // model, hand-assembled CompiledModel).
            if let Err(e) = mcfuser_sim::verify::verify_program(&cc.tuned.kernel.program) {
                return Err(ExecError::Verify {
                    model: self.name.clone(),
                    chain: cc.chain.name.clone(),
                    detail: e.to_string(),
                });
            }
        }

        // Interior chain nodes: replaced by the fused kernel, never
        // materialized. Validate nothing outside the chain reads them.
        let mut fused_output: FxHashMap<NodeId, usize> = FxHashMap::default();
        let mut interior: FxHashSet<NodeId> = FxHashSet::default();
        for (ci, cc) in self.chains.iter().enumerate() {
            fused_output.insert(cc.output, ci);
            for &node in &cc.nodes {
                if node != cc.output {
                    interior.insert(node);
                }
            }
        }
        for &out in &graph.outputs {
            if interior.contains(&out) {
                return Err(mismatch(format!(
                    "graph output '{}' is fused away as a chain interior",
                    graph.node(out).name
                )));
            }
        }

        // Named input bindings (names must be unique to key by name).
        let bindings = graph.input_bindings();
        {
            let mut seen: FxHashSet<&str> = FxHashSet::default();
            for (name, _) in &bindings {
                if !seen.insert(name.as_str()) {
                    return Err(mismatch(format!("duplicate input name '{name}'")));
                }
            }
        }
        let inputs: Vec<InputBinding> = bindings
            .into_iter()
            .map(|(name, node)| InputBinding {
                shape: graph.node(node).shape.clone(),
                name,
                node,
            })
            .collect();

        // The step list, in graph (topological) order.
        let rest_time: FxHashMap<NodeId, f64> = self.rest_times.iter().copied().collect();
        let elem_bytes = graph.dtype.size_bytes() as f64;
        let mut steps: Vec<Step> = Vec::new();
        let mut fused_of: FxHashMap<NodeId, usize> = FxHashMap::default();
        let mut virtual_time = 0.0;
        let mut bytes_per_request = 0.0;
        for (i, node) in graph.nodes.iter().enumerate() {
            let id = NodeId(i);
            if matches!(node.op, Op::Input) || interior.contains(&id) {
                continue;
            }
            if let Some(&ci) = fused_output.get(&id) {
                let cc = &self.chains[ci];
                let prof = &cc.tuned.profile;
                virtual_time += prof.time;
                bytes_per_request += prof.gmem_bytes;
                fused_of.insert(id, steps.len());
                steps.push(Step::Fused {
                    chain: cc.chain.name.clone(),
                    program: Arc::new(cc.tuned.kernel.program.clone()),
                    data_inputs: cc.data_inputs.clone(),
                    transposed: cc.transposed_inputs.clone(),
                    output: id,
                    out_shape: node.shape.clone(),
                    kernel_time: prof.time,
                    bytes: prof.gmem_bytes,
                });
            } else {
                let time = rest_time.get(&id).copied().unwrap_or(0.0);
                let bytes = if matches!(node.op, Op::Weight) {
                    0.0
                } else {
                    let read: u64 = node
                        .inputs
                        .iter()
                        .map(|&x| graph.node(x).shape.iter().product::<u64>())
                        .sum();
                    let written: u64 = node.shape.iter().product();
                    (read + written) as f64 * elem_bytes
                };
                virtual_time += time;
                bytes_per_request += bytes;
                steps.push(Step::Reference {
                    node: id,
                    time,
                    bytes,
                });
            }
        }

        // Liveness: the last step reading each node. Graph outputs (and
        // unread bound inputs) are never released. A step reading a
        // fused-away interior node would dereference a value that is
        // never materialized — reject the pair as inconsistent.
        let keep: FxHashSet<NodeId> = graph.outputs.iter().copied().collect();
        let mut last_use: FxHashMap<NodeId, usize> = FxHashMap::default();
        for (s, step) in steps.iter().enumerate() {
            let reads: &[NodeId] = match step {
                Step::Fused { data_inputs, .. } => data_inputs,
                Step::Reference { node, .. } => &graph.node(*node).inputs,
            };
            for &r in reads {
                if interior.contains(&r) {
                    return Err(mismatch(format!(
                        "a step consumes fused-interior node '{}'",
                        graph.node(r).name
                    )));
                }
                last_use.insert(r, s);
            }
        }
        let mut release_after: Vec<Vec<NodeId>> = vec![Vec::new(); steps.len()];
        for (&node, &s) in &last_use {
            if !keep.contains(&node) {
                release_after[s].push(node);
            }
        }
        for r in &mut release_after {
            r.sort_unstable();
        }

        // Peak-liveness simulation: bound inputs are live up front, each
        // step materializes one value, releases happen right after.
        let mut live = inputs.len();
        let mut peak_live = live;
        for (s, _) in steps.iter().enumerate() {
            live += 1;
            peak_live = peak_live.max(live);
            live -= release_after[s].len();
        }

        let buffers = BufferPlan {
            slot_elems: graph
                .nodes
                .iter()
                .map(|nd| nd.shape.iter().product())
                .collect(),
            release_after,
            peak_live,
            total_nodes: n,
        };

        Ok(ExecutablePlan {
            name: self.name.clone(),
            dtype: graph.dtype,
            inputs,
            steps,
            fused_of,
            outputs: graph
                .outputs
                .iter()
                .map(|&id| (graph.node(id).name.clone(), id))
                .collect(),
            buffers,
            virtual_time,
            bytes_per_request,
            graph: graph.clone(),
            device: self.device.clone(),
            backend: self.exec_backend,
        })
    }
}
