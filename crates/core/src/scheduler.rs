//! Continuous-batching admission queue in front of the runtime.
//!
//! [`ModelRuntime::submit`] enqueues a request instead of executing it
//! inline. Pending requests for the same `(model, seed, backend)` —
//! the unit of coalescing, since weights derive from the seed and a
//! widened launch runs every slot on one backend — are drained
//! together and executed as **one widened fused launch** per step (see
//! [`BatchedPlan`]), governed by a [`BatchPolicy`]:
//!
//! * a batch launches as soon as [`BatchPolicy::max_batch`] requests
//!   are pending, or once the oldest pending request has waited
//!   [`BatchPolicy::max_wait`] (wall time) — latency is bounded even
//!   at low arrival rates;
//! * admission is bounded by [`BatchPolicy::queue_cap`] per model; a
//!   full queue rejects with [`ExecError::Overloaded`] *at submit
//!   time* instead of queueing unboundedly;
//! * a per-request deadline ([`ModelRuntime::submit_with_deadline`])
//!   expires with [`ExecError::DeadlineExceeded`] when the batch is
//!   drained, *before* any execution is wasted on it.
//!
//! **Leader/follower draining.** The first thread to enqueue into an
//! idle queue becomes its leader: it waits out the batching window,
//! drains up to `max_batch` requests, executes them as one batch, fills
//! every request's result slot, and repeats until the queue is empty
//! (only then does it resign, under the lock — a non-empty queue always
//! has a leader, so no request can be stranded). Every other submitter
//! just parks on its own result slot. There are no background threads:
//! batching borrows the callers themselves.
//!
//! **Queueing on the virtual clock.** Reported latency is
//! enqueue-to-completion on the same virtual clock the tuner charges:
//! each model keeps a frontier (total virtual span assigned to its
//! batches so far); a request arriving at frontier `a` and completing
//! in a batch that ends at frontier `c` has latency `c − a` — it pays
//! for every earlier batch of the same model plus its own, so the
//! p50/p95 in [`RuntimeStats`](crate::RuntimeStats) mean something
//! under load instead of repeating the unloaded per-request constant.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
// The workspace's `parking_lot` is an offline std wrapper whose guards
// *are* std guards, so std's `Condvar` composes with its `Mutex`.
use std::sync::Arc;
use std::sync::Condvar;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rustc_hash::FxHashMap;

use mcfuser_sim::ExecBackend;

use crate::batch::BatchedPlan;
use crate::plan::{ExecError, InputSet, Outputs, RunOptions};
use crate::runtime::ModelRuntime;

/// Knobs governing the admission queue. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPolicy {
    /// Most requests coalesced into one widened launch.
    pub max_batch: usize,
    /// Longest (wall-clock) time the oldest pending request waits for
    /// its batch to fill before the leader drains anyway.
    pub max_wait: Duration,
    /// Most requests admitted per model before
    /// [`ExecError::Overloaded`] rejections kick in.
    pub queue_cap: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_cap: 64,
        }
    }
}

/// One parked submitter's result slot.
#[derive(Default)]
struct Slot {
    result: Mutex<Option<Result<Outputs, ExecError>>>,
    done: Condvar,
}

impl Slot {
    fn fill(&self, r: Result<Outputs, ExecError>) {
        *self.result.lock() = Some(r);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Outputs, ExecError> {
        let mut guard = self.result.lock();
        while guard.is_none() {
            guard = self.done.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        guard.take().expect("slot filled exactly once")
    }
}

/// One admitted, not-yet-executed request.
struct Pending {
    inputs: InputSet,
    opts: RunOptions,
    deadline: Option<Duration>,
    enqueued: Instant,
    /// The model's virtual frontier at admission.
    arrival_vt: f64,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct PlanQueue {
    requests: VecDeque<Pending>,
    /// Whether some submitter is currently leading this queue.
    leader: bool,
}

#[derive(Default)]
struct SchedState {
    /// Pending requests per `(model, seed, backend)` coalescing key —
    /// a widened launch executes every slot on one backend, so requests
    /// pinning different backends must not share a batch.
    queues: FxHashMap<(String, u64, Option<ExecBackend>), PlanQueue>,
    /// Admitted-but-unfinished requests per model (the `queue_cap`
    /// denominator).
    pending: FxHashMap<String, usize>,
    /// Per-model virtual clock: total span assigned to drained batches.
    frontier: FxHashMap<String, f64>,
}

/// The runtime's batching state: queues, the virtual frontier, and the
/// admission counters surfaced through
/// [`RuntimeStats`](crate::RuntimeStats).
pub(crate) struct Scheduler {
    pub(crate) policy: BatchPolicy,
    state: Mutex<SchedState>,
    /// Wakes waiting leaders when a request is enqueued.
    work: Condvar,
    rejected: AtomicU64,
    expired: AtomicU64,
    /// Drained-batch width histogram (width → launches).
    batch_sizes: Mutex<FxHashMap<usize, u64>>,
}

impl Scheduler {
    pub(crate) fn with_policy(policy: BatchPolicy) -> Self {
        Scheduler {
            policy,
            state: Mutex::new(SchedState::default()),
            work: Condvar::new(),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            batch_sizes: Mutex::new(FxHashMap::default()),
        }
    }

    /// `(queue_depth, rejected, expired, batch-size histogram)`.
    pub(crate) fn snapshot(&self) -> (u64, u64, u64, Vec<(usize, u64)>) {
        let depth = self.state.lock().pending.values().map(|&c| c as u64).sum();
        let mut hist: Vec<(usize, u64)> = self
            .batch_sizes
            .lock()
            .iter()
            .map(|(&k, &n)| (k, n))
            .collect();
        hist.sort_unstable();
        (
            depth,
            self.rejected.load(Ordering::Relaxed),
            self.expired.load(Ordering::Relaxed),
            hist,
        )
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::with_policy(BatchPolicy::default())
    }
}

impl ModelRuntime {
    /// The admission policy governing [`ModelRuntime::submit`].
    pub fn batch_policy(&self) -> &BatchPolicy {
        &self.sched.policy
    }

    /// Serve one request through the batching admission queue: the
    /// request coalesces with other pending same-`(model, seed)`
    /// requests into one widened fused launch. Blocks until the
    /// request's batch completes; outputs are bit-identical to
    /// [`ModelRuntime::infer`] with the same arguments.
    ///
    /// Returns [`ExecError::Overloaded`] without queueing when the
    /// model already has [`BatchPolicy::queue_cap`] requests admitted.
    pub fn submit(
        &self,
        model: &str,
        inputs: InputSet,
        opts: RunOptions,
    ) -> Result<Outputs, ExecError> {
        self.submit_inner(model, inputs, opts, None)
    }

    /// [`ModelRuntime::submit`] with a per-request deadline, measured
    /// (wall clock) from admission: a request still queued when its
    /// batch is drained past the deadline completes with
    /// [`ExecError::DeadlineExceeded`] instead of being executed.
    pub fn submit_with_deadline(
        &self,
        model: &str,
        inputs: InputSet,
        opts: RunOptions,
        deadline: Duration,
    ) -> Result<Outputs, ExecError> {
        self.submit_inner(model, inputs, opts, Some(deadline))
    }

    fn submit_inner(
        &self,
        model: &str,
        inputs: InputSet,
        opts: RunOptions,
        deadline: Option<Duration>,
    ) -> Result<Outputs, ExecError> {
        let Some(batched) = self.batched_plan(model) else {
            self.count_failure();
            return Err(ExecError::UnknownModel {
                name: model.to_string(),
            });
        };
        // Admission-time validation: a malformed request is rejected
        // here with its structured error instead of poisoning a whole
        // batch at drain time. (Binding is Cow-style — no clones.)
        if let Err(e) = batched.plan().bind_inputs(&inputs) {
            self.count_failure();
            return Err(e);
        }

        let sched = &self.sched;
        let key = (model.to_string(), opts.seed, opts.backend);
        let slot = Arc::new(Slot::default());
        let is_leader;
        {
            let mut st = sched.state.lock();
            let pending = st.pending.entry(model.to_string()).or_insert(0);
            if *pending >= sched.policy.queue_cap {
                drop(st);
                sched.rejected.fetch_add(1, Ordering::Relaxed);
                self.count_failure();
                return Err(ExecError::Overloaded {
                    model: model.to_string(),
                    queue_cap: sched.policy.queue_cap,
                });
            }
            *pending += 1;
            let arrival_vt = st.frontier.get(model).copied().unwrap_or(0.0);
            let q = st.queues.entry(key.clone()).or_default();
            q.requests.push_back(Pending {
                inputs,
                opts,
                deadline,
                enqueued: Instant::now(),
                arrival_vt,
                slot: slot.clone(),
            });
            is_leader = !q.leader;
            if is_leader {
                q.leader = true;
            }
        }
        sched.work.notify_all();
        if is_leader {
            self.lead(&batched, &key);
        }
        slot.wait()
    }

    /// Drain and execute batches of `key`'s queue until it is empty
    /// (which necessarily includes the leader's own request). Resigning
    /// happens under the state lock, so a non-empty queue always has a
    /// leader.
    fn lead(&self, batched: &BatchedPlan, key: &(String, u64, Option<ExecBackend>)) {
        let sched = &self.sched;
        let model = &key.0;
        loop {
            let mut batch;
            let mut expired = Vec::new();
            let completion_vt;
            let batch_span;
            let batch_bytes;
            {
                let mut st = sched.state.lock();
                // Batching window: wait for a full batch or the oldest
                // request's window to lapse, whichever is first.
                loop {
                    let q = st.queues.get_mut(key).expect("leader's queue exists");
                    if q.requests.is_empty() {
                        q.leader = false;
                        return;
                    }
                    let len = q.requests.len();
                    let waited = q.requests.front().expect("non-empty").enqueued.elapsed();
                    if len >= sched.policy.max_batch || waited >= sched.policy.max_wait {
                        break;
                    }
                    let remaining = sched.policy.max_wait - waited;
                    let (guard, timeout) = sched
                        .work
                        .wait_timeout(st, remaining)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
                let q = st.queues.get_mut(key).expect("leader's queue exists");
                let k = q.requests.len().min(sched.policy.max_batch);
                let drained: Vec<Pending> = q.requests.drain(..k).collect();
                if let Some(c) = st.pending.get_mut(model) {
                    *c -= k;
                }
                // Deadline triage before the batch is priced or
                // executed: expired requests never reach the device.
                let now = Instant::now();
                batch = Vec::with_capacity(drained.len());
                for p in drained {
                    let lapsed = p
                        .deadline
                        .is_some_and(|d| now.duration_since(p.enqueued) > d);
                    if lapsed {
                        expired.push(p);
                    } else {
                        batch.push(p);
                    }
                }
                // Advance the model's virtual frontier by the batch's
                // span while still under the lock, so later arrivals
                // observe it in their `arrival_vt`.
                if batch.is_empty() {
                    completion_vt = 0.0;
                    batch_span = 0.0;
                    batch_bytes = 0.0;
                } else {
                    let (span, bytes) = batched.batch_span(batch.len());
                    let frontier = st.frontier.entry(model.clone()).or_insert(0.0);
                    *frontier += span;
                    completion_vt = *frontier;
                    batch_span = span;
                    batch_bytes = bytes;
                }
            }
            for p in expired {
                sched.expired.fetch_add(1, Ordering::Relaxed);
                self.count_failure();
                let deadline = p.deadline.expect("only deadlined requests expire");
                p.slot.fill(Err(ExecError::DeadlineExceeded {
                    model: model.clone(),
                    deadline,
                }));
            }
            if batch.is_empty() {
                continue;
            }
            *sched.batch_sizes.lock().entry(batch.len()).or_insert(0) += 1;

            let store = self.weights.store(model, key.1);
            let refs: Vec<&InputSet> = batch.iter().map(|p| &p.inputs).collect();
            let mut arena = self.arena();
            let started = Instant::now();
            let result = batched.execute_batch(&refs, batch[0].opts, &mut arena, Some(&store));
            let exec_wall = started.elapsed().as_secs_f64();
            self.recycle_arena(arena);
            match result {
                Ok(outs) => {
                    let per_request_bytes = batch_bytes / batch.len() as f64;
                    self.record_busy(model, batch_span, exec_wall);
                    for (p, out) in batch.iter().zip(outs) {
                        // Wall latency is enqueue-to-completion — it
                        // includes the batching window and queueing, the
                        // honest number a client would measure.
                        let wall = p.enqueued.elapsed().as_secs_f64();
                        self.record_success(
                            model,
                            completion_vt - p.arrival_vt,
                            wall,
                            per_request_bytes,
                        );
                        p.slot.fill(Ok(out));
                    }
                }
                Err(e) => {
                    for p in &batch {
                        self.count_failure();
                        p.slot.fill(Err(e.clone()));
                    }
                }
            }
        }
    }
}
