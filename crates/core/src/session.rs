//! Incremental decode sessions: per-session KV caches over bucketed
//! decode-step plans.
//!
//! Autoregressive serving runs the same tiny step graph thousands of
//! times, with two twists a stateless [`ModelRuntime`] cannot express:
//!
//! * the KV cache is **session state** — each generated token appends
//!   one row per layer, and the next step must see every previous row;
//! * the step graph is compiled against a **bucket capacity** `t_b`,
//!   so a session's cache must live in one of a small set of
//!   sequence-length buckets and migrate to the next bucket when it
//!   fills up.
//!
//! [`DecodeServing`] owns the compiled per-bucket plans (one prefill
//! and one step plan per bucket, all sharing the same weight-hash
//! graph name, so a session can hop buckets without changing weights).
//! [`DecodeSession`] owns the per-session cache buffers — taken from a
//! serving-wide [`BufferArena`] and recycled on drop — and drives
//! [`DecodeSession::prefill`] / [`DecodeSession::step`]. Steps go
//! through [`ModelRuntime::submit`], so concurrent sessions decoding
//! in the same `(model, bucket, seed, backend)` coalesce into one
//! widened fused launch.
//!
//! Graph construction stays in the caller (typically
//! `mcfuser-workloads`' decoder builders): [`DecodeServing::compile`]
//! takes builder closures, keeping this crate model-agnostic.

use std::sync::Arc;

use parking_lot::Mutex;

use mcfuser_ir::{causal_mask, decode_mask, scatter_onehot, Graph};
use mcfuser_sim::{BufferArena, HostTensor};

use crate::engine::FusionEngine;
use crate::plan::{ExecError, InputSet, RunOptions};
use crate::runtime::ModelRuntime;
use crate::tuner::TuneError;

/// Shape metadata a [`DecodeServing`] needs to drive a decoder it did
/// not build: enough to size KV caches and synthesize the shared
/// mask/one-hot inputs of the step graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeSpec {
    /// Model name: the weight-hash graph name shared by every bucket's
    /// prefill and step graph, and the prefix of their plan names.
    pub model: String,
    /// Decoder layers (one K and one V cache panel each).
    pub layers: u32,
    /// Hidden width of the residual stream.
    pub hidden: u64,
    /// Query heads (the additive mask is `[heads, 1, t_b]`).
    pub heads: u64,
    /// KV heads (cache panels are `[kv_heads, t_b, head_dim]`).
    pub kv_heads: u64,
    /// Sequence-length buckets, strictly increasing. Each gets one
    /// compiled prefill plan and one compiled step plan.
    pub buckets: Vec<u64>,
}

impl DecodeSpec {
    /// Head dimension (`hidden / heads`).
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }

    /// Elements of one KV cache panel at bucket capacity `t_b`.
    fn panel_len(&self, t_b: u64) -> usize {
        (self.kv_heads * t_b * self.head_dim()) as usize
    }
}

/// Session-level failures, on top of the runtime's [`ExecError`].
#[derive(Debug)]
pub enum DecodeError {
    /// The prompt does not fit the largest configured bucket.
    PromptTooLong {
        /// Prompt length requested.
        prompt: u64,
        /// Largest bucket capacity available.
        largest_bucket: u64,
    },
    /// Every bucket is full: the session generated past the largest
    /// configured capacity.
    CapacityExhausted {
        /// Position the rejected token would have occupied.
        pos: u64,
    },
    /// A step was taken before [`DecodeSession::prefill`].
    NotPrefilled,
    /// The underlying plan execution failed.
    Exec(ExecError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::PromptTooLong {
                prompt,
                largest_bucket,
            } => write!(
                f,
                "prompt of {prompt} tokens exceeds the largest bucket ({largest_bucket})"
            ),
            DecodeError::CapacityExhausted { pos } => {
                write!(f, "no bucket can hold position {pos}")
            }
            DecodeError::NotPrefilled => write!(f, "step() before prefill()"),
            DecodeError::Exec(e) => write!(f, "decode step failed: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<ExecError> for DecodeError {
    fn from(e: ExecError) -> Self {
        DecodeError::Exec(e)
    }
}

/// Compiled per-bucket decoder plans plus the shared session arena.
///
/// Build once with [`DecodeServing::compile`], then open any number of
/// concurrent [`DecodeSession`]s with [`DecodeServing::open`].
pub struct DecodeServing {
    spec: DecodeSpec,
    runtime: Arc<ModelRuntime>,
    /// KV cache buffers recycled across sessions and bucket hops.
    arena: Mutex<BufferArena>,
}

impl DecodeServing {
    /// Compile and register one prefill and one step plan per bucket.
    ///
    /// `step_graph(t_b)` must build the single-token decode graph at
    /// bucket capacity `t_b` (inputs `x`, `mask`, `onehot`, per-layer
    /// `l{i}.k_cache` / `l{i}.v_cache`; outputs `lm_head` then
    /// per-layer `l{i}.kh` / `l{i}.vh` new rows); `prefill_graph(t)`
    /// the full-sequence causal graph (inputs `x`, `mask`; outputs
    /// `lm_head` then per-layer KV panels). Both must use
    /// [`DecodeSpec::model`] as the *graph* name so every bucket hashes
    /// to the same weights.
    pub fn compile(
        engine: &FusionEngine,
        runtime: Arc<ModelRuntime>,
        spec: DecodeSpec,
        step_graph: impl Fn(u64) -> Graph,
        prefill_graph: impl Fn(u64) -> Graph,
    ) -> Result<Arc<Self>, TuneError> {
        assert!(!spec.buckets.is_empty(), "at least one bucket");
        assert!(
            spec.buckets.windows(2).all(|w| w[0] < w[1]),
            "buckets must be strictly increasing"
        );
        for &b in &spec.buckets {
            let step = step_graph(b);
            assert_eq!(
                step.name, spec.model,
                "step graph must share the model name"
            );
            runtime.register(step_plan_name(&spec.model, b), engine.compile_plan(&step)?);
            let pre = prefill_graph(b);
            assert_eq!(
                pre.name, spec.model,
                "prefill graph must share the model name"
            );
            runtime.register(
                prefill_plan_name(&spec.model, b),
                engine.compile_plan(&pre)?,
            );
        }
        Ok(Arc::new(DecodeServing {
            spec,
            runtime,
            arena: Mutex::new(BufferArena::new()),
        }))
    }

    /// The configured spec.
    pub fn spec(&self) -> &DecodeSpec {
        &self.spec
    }

    /// The runtime holding the per-bucket plans.
    pub fn runtime(&self) -> &Arc<ModelRuntime> {
        &self.runtime
    }

    /// Open a fresh session (no cache allocated until `prefill`).
    pub fn open(self: &Arc<Self>, opts: RunOptions) -> DecodeSession {
        DecodeSession {
            serving: self.clone(),
            opts,
            bucket: None,
            pos: 0,
            k: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Smallest bucket with capacity ≥ `need`.
    fn bucket_for(&self, need: u64) -> Option<usize> {
        self.spec.buckets.iter().position(|&b| b >= need)
    }

    fn take_panels(&self, t_b: u64, n: usize) -> Vec<Vec<f32>> {
        let len = self.spec.panel_len(t_b);
        let mut arena = self.arena.lock();
        (0..n).map(|_| arena.take(len)).collect()
    }

    fn put_panels(&self, panels: impl IntoIterator<Item = Vec<f32>>) {
        let mut arena = self.arena.lock();
        for p in panels {
            arena.put(p);
        }
    }
}

/// Registered plan name of the decode-step plan at bucket `t_b`.
pub fn step_plan_name(model: &str, t_b: u64) -> String {
    format!("{model}@step{t_b}")
}

/// Registered plan name of the prefill plan at bucket `t_b`.
pub fn prefill_plan_name(model: &str, t_b: u64) -> String {
    format!("{model}@prefill{t_b}")
}

/// One decoding stream: bucket-capacity KV caches plus the current
/// position. Obtained from [`DecodeServing::open`]; buffers return to
/// the serving arena on drop.
pub struct DecodeSession {
    serving: Arc<DecodeServing>,
    opts: RunOptions,
    /// Index into `spec.buckets` of the current capacity (None until
    /// prefill).
    bucket: Option<usize>,
    pos: u64,
    /// Per-layer K cache panels `[kv_heads, t_b, head_dim]`.
    k: Vec<Vec<f32>>,
    /// Per-layer V cache panels.
    v: Vec<Vec<f32>>,
}

impl DecodeSession {
    /// Tokens appended so far (prompt + generated).
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Current bucket capacity (0 before prefill).
    pub fn capacity(&self) -> u64 {
        self.bucket.map_or(0, |i| self.serving.spec.buckets[i])
    }

    /// Borrow a layer's `(K, V)` cache panels (test/debug hook).
    pub fn kv_cache(&self, layer: usize) -> (&[f32], &[f32]) {
        (&self.k[layer], &self.v[layer])
    }

    /// Run the prompt through the bucket's full-sequence prefill plan,
    /// seeding the KV caches with rows `[0, prompt)` of every layer's
    /// panels. Returns the prompt logits `[prompt, vocab]`.
    ///
    /// The prompt is zero-padded up to the bucket length; causal
    /// masking makes rows `< prompt` (and their KV panel rows)
    /// independent of the padding.
    pub fn prefill(&mut self, x: &HostTensor) -> Result<HostTensor, DecodeError> {
        let spec = self.serving.spec.clone();
        assert_eq!(x.shape.len(), 2, "prompt must be [t, hidden]");
        assert_eq!(x.shape[1], spec.hidden, "prompt width must match hidden");
        let prompt = x.shape[0];
        assert!(prompt > 0, "empty prompt");
        let bucket = self
            .serving
            .bucket_for(prompt)
            .ok_or(DecodeError::PromptTooLong {
                prompt,
                largest_bucket: *spec.buckets.last().unwrap(),
            })?;
        let t_b = spec.buckets[bucket];

        let mut padded = x.data.clone();
        padded.resize((t_b * spec.hidden) as usize, 0.0);
        let mut inputs = InputSet::new();
        inputs.insert("x", HostTensor::from_vec(&[t_b, spec.hidden], padded));
        inputs.insert("mask", causal_mask(spec.heads, t_b, t_b));
        let out =
            self.serving
                .runtime
                .submit(&prefill_plan_name(&spec.model, t_b), inputs, self.opts)?;

        // (Re)allocate the caches at this bucket and seed rows [0, P).
        self.release_panels();
        let layers = spec.layers as usize;
        self.k = self.serving.take_panels(t_b, layers);
        self.v = self.serving.take_panels(t_b, layers);
        let hd = spec.head_dim() as usize;
        let rows = prompt as usize;
        for l in 0..layers {
            for (cache, name) in [(&mut self.k[l], "kh"), (&mut self.v[l], "vh")] {
                let panel = out
                    .get(&format!("l{l}.{name}"))
                    .expect("prefill graph emits per-layer KV panels");
                copy_rows(panel, cache, t_b as usize, hd, rows, spec.kv_heads as usize);
            }
        }
        self.bucket = Some(bucket);
        self.pos = prompt;

        // Trim the padded logits back to the prompt rows.
        let logits = out.primary();
        let vocab = logits.shape[1];
        Ok(HostTensor::from_vec(
            &[prompt, vocab],
            logits.data[..(prompt * vocab) as usize].to_vec(),
        ))
    }

    /// Decode one token: run the bucket's step plan against the cache,
    /// append the new KV rows at the current position, and return the
    /// logits `[1, vocab]`. Migrates the cache to the next bucket first
    /// when the current one is full.
    ///
    /// Steps are submitted through the runtime's batching queue, so
    /// concurrent sessions at the same `(model, bucket, seed, backend)`
    /// coalesce into one widened fused launch.
    pub fn step(&mut self, x: &HostTensor) -> Result<HostTensor, DecodeError> {
        let bucket = self.bucket.ok_or(DecodeError::NotPrefilled)?;
        let spec = self.serving.spec.clone();
        assert_eq!(
            x.data.len(),
            spec.hidden as usize,
            "step input must be one [1, hidden] row"
        );
        let bucket = if self.pos == spec.buckets[bucket] {
            self.grow(bucket)?
        } else {
            bucket
        };
        let t_b = spec.buckets[bucket];
        let hd = spec.head_dim() as usize;

        let mut inputs = InputSet::new();
        inputs.insert("x", HostTensor::from_vec(&[1, spec.hidden], x.data.clone()));
        inputs.insert("mask", decode_mask(spec.heads, t_b, self.pos));
        let onehot = scatter_onehot(spec.kv_heads, t_b, self.pos);
        // The fused KV-append chain computes `cache + onehot × new_row`;
        // by linearity it rewrites exactly the rows this column selects.
        // The verifier's one-hot obligation makes that "exactly one row
        // per head" — checked here where the scatter input is built.
        debug_assert!(
            mcfuser_sim::verify::is_scatter_onehot(&onehot),
            "decode scatter input must be one-hot per head"
        );
        inputs.insert("onehot", onehot);
        let panel_shape = [spec.kv_heads, t_b, hd as u64];
        for l in 0..spec.layers as usize {
            inputs.insert(
                format!("l{l}.k_cache"),
                HostTensor::from_vec(&panel_shape, self.k[l].clone()),
            );
            inputs.insert(
                format!("l{l}.v_cache"),
                HostTensor::from_vec(&panel_shape, self.v[l].clone()),
            );
        }
        let out =
            self.serving
                .runtime
                .submit(&step_plan_name(&spec.model, t_b), inputs, self.opts)?;

        // Append the new KV rows at `pos`.
        let row = self.pos as usize;
        for l in 0..spec.layers as usize {
            for (cache, name) in [(&mut self.k[l], "kh"), (&mut self.v[l], "vh")] {
                let new = out
                    .get(&format!("l{l}.{name}"))
                    .expect("step graph emits per-layer KV rows");
                for h in 0..spec.kv_heads as usize {
                    let dst = (h * t_b as usize + row) * hd;
                    cache[dst..dst + hd].copy_from_slice(&new.data[h * hd..(h + 1) * hd]);
                }
            }
        }
        self.pos += 1;
        Ok(out.primary().clone())
    }

    /// Migrate the cache panels into the next larger bucket.
    fn grow(&mut self, bucket: usize) -> Result<usize, DecodeError> {
        let spec = self.serving.spec.clone();
        let next = bucket + 1;
        if next >= spec.buckets.len() {
            return Err(DecodeError::CapacityExhausted { pos: self.pos });
        }
        let (old_t, new_t) = (spec.buckets[bucket] as usize, spec.buckets[next]);
        let hd = spec.head_dim() as usize;
        let kv = spec.kv_heads as usize;
        let layers = spec.layers as usize;
        let mut k2 = self.serving.take_panels(new_t, layers);
        let mut v2 = self.serving.take_panels(new_t, layers);
        for l in 0..layers {
            for (old, new) in [(&self.k[l], &mut k2[l]), (&self.v[l], &mut v2[l])] {
                for h in 0..kv {
                    let src = h * old_t * hd;
                    let dst = h * new_t as usize * hd;
                    new[dst..dst + old_t * hd].copy_from_slice(&old[src..src + old_t * hd]);
                }
            }
        }
        self.serving.put_panels(std::mem::replace(&mut self.k, k2));
        self.serving.put_panels(std::mem::replace(&mut self.v, v2));
        self.bucket = Some(next);
        Ok(next)
    }

    fn release_panels(&mut self) {
        self.serving.put_panels(std::mem::take(&mut self.k));
        self.serving.put_panels(std::mem::take(&mut self.v));
    }
}

impl Drop for DecodeSession {
    fn drop(&mut self) {
        self.release_panels();
    }
}

/// Copy rows `[0, rows)` of a `[kv_heads, t_src, hd]` panel into the
/// head-strided layout of a `[kv_heads, t_dst, hd]` cache.
fn copy_rows(
    panel: &HostTensor,
    cache: &mut [f32],
    t_dst: usize,
    hd: usize,
    rows: usize,
    kv_heads: usize,
) {
    let t_src = panel.shape[1] as usize;
    for h in 0..kv_heads {
        for r in 0..rows {
            let src = (h * t_src + r) * hd;
            let dst = (h * t_dst + r) * hd;
            cache[dst..dst + hd].copy_from_slice(&panel.data[src..src + hd]);
        }
    }
}
