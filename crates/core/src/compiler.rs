//! The fallback-backend interface for end-to-end compilation (§V-B).
//!
//! MCFuser only tunes MBCI sub-graphs; everything else is delegated to a
//! per-operator backend ("we either continue optimization with Ansor or
//! Relay"). The delegation point is the [`OpCostModel`] trait,
//! implemented by the baseline backends — `MCFuser+Relay` and
//! `MCFuser+Ansor` from Fig. 9 are an engine with different fallbacks.
//!
//! Graph compilation lives on [`FusionEngine::compile`] /
//! [`FusionEngine::compile_plan`]; execution goes through
//! [`ExecutablePlan`](crate::ExecutablePlan) and
//! [`ModelRuntime`](crate::ModelRuntime). (The 0.2 free-function shims
//! `compile_graph` / `execute_compiled` and the one-shot-plan
//! `FusionEngine::execute` have all been removed; build a session with
//! `FusionEngine::builder(dev)` instead.)
//!
//! [`FusionEngine::compile`]: crate::engine::FusionEngine::compile
//! [`FusionEngine::compile_plan`]: crate::engine::FusionEngine::compile_plan

use mcfuser_ir::{Graph, NodeId};
use mcfuser_sim::DeviceSpec;

/// Cost/tuning model for operators MCFuser does not fuse.
pub trait OpCostModel: Sync {
    /// Backend name (for reports).
    fn name(&self) -> &str;
    /// Execution time of one graph node on the device.
    fn op_time(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64;
    /// Execution time of one graph node when its producer has been fused
    /// into an MCFuser chain. Backends whose `op_time` prices an
    /// element-wise op at (near) zero by folding it into the producer's
    /// epilogue must charge a real launch here — the producer kernel the
    /// fold assumed no longer exists as a standalone launch. Defaults to
    /// `op_time` for backends without epilogue-folding assumptions.
    fn op_time_standalone(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64 {
        self.op_time(graph, node, dev)
    }
    /// Virtual tuning cost of preparing these nodes.
    fn tuning_seconds(&self, graph: &Graph, nodes: &[NodeId], dev: &DeviceSpec) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FusionEngine;
    use mcfuser_ir::GraphBuilder;
    use mcfuser_sim::{DType, HostTensor};
    use rustc_hash::FxHashMap;

    /// A trivial fallback pricing every op at a fixed cost.
    struct FlatCost;
    impl OpCostModel for FlatCost {
        fn name(&self) -> &str {
            "flat"
        }
        fn op_time(&self, _g: &Graph, _n: NodeId, _d: &DeviceSpec) -> f64 {
            10e-6
        }
        fn tuning_seconds(&self, _g: &Graph, nodes: &[NodeId], _d: &DeviceSpec) -> f64 {
            nodes.len() as f64 * 0.5
        }
    }

    fn tiny_attention_graph() -> Graph {
        let mut gb = GraphBuilder::new("attn", DType::F16);
        let q = gb.input("q", vec![2, 64, 32]);
        let k = gb.input("k", vec![2, 64, 32]);
        let v = gb.input("v", vec![2, 64, 32]);
        let s = gb.batch_matmul("qk", q, k, true);
        let p = gb.softmax("sm", s, 1.0 / (32f32).sqrt());
        let o = gb.batch_matmul("pv", p, v, false);
        let ln = gb.layer_norm("ln", o);
        gb.finish(vec![ln])
    }

    /// Migrated from the removed `compile_graph` shim test: an explicit
    /// fallback passed at compile time matches a builder-configured one.
    #[test]
    fn explicit_fallback_matches_configured_fallback() {
        let g = tiny_attention_graph();
        let dev = DeviceSpec::a100();
        let ad_hoc = FusionEngine::builder(dev.clone())
            .build()
            .compile_with_fallback(&g, &FlatCost)
            .unwrap();
        let engine = FusionEngine::builder(dev).fallback(FlatCost).build();
        let direct = engine.compile(&g).unwrap();
        assert_eq!(ad_hoc.total_time, direct.total_time);
        assert_eq!(ad_hoc.chains.len(), direct.chains.len());
        assert_eq!(
            ad_hoc.chains[0].tuned.candidate,
            direct.chains[0].tuned.candidate
        );
    }

    /// Migrated from the removed `execute_compiled` / `FusionEngine::
    /// execute` shims: a compiled model frozen into a plan serves
    /// finite outputs, and node-keyed requests (the old shim's calling
    /// convention, via `InputSet::from_node_values`) agree with
    /// name-keyed ones bit for bit.
    #[test]
    fn compiled_plan_serves_node_and_name_keyed_requests() {
        let g = tiny_attention_graph();
        let engine = FusionEngine::builder(DeviceSpec::a100())
            .fallback(FlatCost)
            .build();
        let mut inputs: FxHashMap<NodeId, HostTensor> = FxHashMap::default();
        for (i, node) in g.nodes.iter().enumerate() {
            if matches!(node.op, mcfuser_ir::Op::Input) {
                let len: u64 = node.shape.iter().product();
                inputs.insert(
                    NodeId(i),
                    HostTensor::from_vec(
                        &node.shape,
                        (0..len).map(|x| ((x % 13) as f32 - 6.0) / 13.0).collect(),
                    ),
                );
            }
        }
        let plan = engine.compile_plan(&g).unwrap();
        let by_node = plan
            .execute(
                &crate::InputSet::from_node_values(&inputs),
                crate::RunOptions::seeded(7),
            )
            .unwrap();
        assert!(by_node
            .iter()
            .all(|(_, t)| t.data.iter().all(|v| v.is_finite())));

        let mut by_name = crate::InputSet::new();
        for b in plan.inputs() {
            by_name.insert(b.name.clone(), inputs[&b.node].clone());
        }
        let named = plan
            .execute(&by_name, crate::RunOptions::seeded(7))
            .unwrap();
        assert_eq!(named.primary().data, by_node.primary().data);
    }
}
