//! The fallback-backend interface for end-to-end compilation (§V-B),
//! plus deprecated free-function shims over the [`FusionEngine`] API.
//!
//! MCFuser only tunes MBCI sub-graphs; everything else is delegated to a
//! per-operator backend ("we either continue optimization with Ansor or
//! Relay"). The delegation point is the [`OpCostModel`] trait,
//! implemented by the baseline backends — `MCFuser+Relay` and
//! `MCFuser+Ansor` from Fig. 9 are an engine with different fallbacks.
//!
//! Graph compilation itself lives on [`FusionEngine::compile`] /
//! [`FusionEngine::execute`]; the old `compile_graph` /
//! `execute_compiled` free functions remain here as thin deprecated
//! shims for one release.
//!
//! [`FusionEngine`]: crate::engine::FusionEngine
//! [`FusionEngine::compile`]: crate::engine::FusionEngine::compile
//! [`FusionEngine::execute`]: crate::engine::FusionEngine::execute

use rustc_hash::FxHashMap;

use mcfuser_ir::{Graph, NodeId};
use mcfuser_sim::{DeviceSpec, HostTensor};

use crate::engine::{CachePolicy, CompiledModel, FusionEngine};
use crate::tuner::{McFuser, TuneError};

/// Cost/tuning model for operators MCFuser does not fuse.
pub trait OpCostModel: Sync {
    /// Backend name (for reports).
    fn name(&self) -> &str;
    /// Execution time of one graph node on the device.
    fn op_time(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64;
    /// Virtual tuning cost of preparing these nodes.
    fn tuning_seconds(&self, graph: &Graph, nodes: &[NodeId], dev: &DeviceSpec) -> f64;
}

/// Compile a graph: partition, tune MBCI sub-graphs with MCFuser, price
/// the remainder with the fallback backend.
#[deprecated(
    since = "0.2.0",
    note = "build a session instead: FusionEngine::builder(dev).build() and call .compile_with_fallback(graph, fallback)"
)]
pub fn compile_graph(
    graph: &Graph,
    dev: &DeviceSpec,
    mcfuser: &McFuser,
    fallback: &dyn OpCostModel,
) -> Result<CompiledModel, TuneError> {
    let engine = FusionEngine::builder(dev.clone())
        .search_params(mcfuser.params.clone())
        .cache(CachePolicy::Disabled)
        .build();
    engine.compile_with_fallback(graph, fallback)
}

/// Execute a compiled model *for value* (see [`FusionEngine::execute`]).
#[deprecated(
    since = "0.2.0",
    note = "use FusionEngine::execute on the engine that compiled the model"
)]
pub fn execute_compiled(
    graph: &Graph,
    model: &CompiledModel,
    inputs: &FxHashMap<NodeId, HostTensor>,
    seed: u64,
) -> Result<Vec<HostTensor>, Box<dyn std::error::Error>> {
    crate::engine::execute_model(graph, model, inputs, seed)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use mcfuser_ir::GraphBuilder;
    use mcfuser_sim::DType;

    /// A trivial fallback pricing every op at a fixed cost.
    struct FlatCost;
    impl OpCostModel for FlatCost {
        fn name(&self) -> &str {
            "flat"
        }
        fn op_time(&self, _g: &Graph, _n: NodeId, _d: &DeviceSpec) -> f64 {
            10e-6
        }
        fn tuning_seconds(&self, _g: &Graph, nodes: &[NodeId], _d: &DeviceSpec) -> f64 {
            nodes.len() as f64 * 0.5
        }
    }

    fn tiny_attention_graph() -> Graph {
        let mut gb = GraphBuilder::new("attn", DType::F16);
        let q = gb.input("q", vec![2, 64, 32]);
        let k = gb.input("k", vec![2, 64, 32]);
        let v = gb.input("v", vec![2, 64, 32]);
        let s = gb.batch_matmul("qk", q, k, true);
        let p = gb.softmax("sm", s, 1.0 / (32f32).sqrt());
        let o = gb.batch_matmul("pv", p, v, false);
        let ln = gb.layer_norm("ln", o);
        gb.finish(vec![ln])
    }

    #[test]
    fn deprecated_shim_matches_engine_compile() {
        let g = tiny_attention_graph();
        let dev = DeviceSpec::a100();
        let shim = compile_graph(&g, &dev, &McFuser::new(), &FlatCost).unwrap();
        let engine = FusionEngine::builder(dev).fallback(FlatCost).build();
        let direct = engine.compile(&g).unwrap();
        assert_eq!(shim.total_time, direct.total_time);
        assert_eq!(shim.chains.len(), direct.chains.len());
        assert_eq!(
            shim.chains[0].tuned.candidate,
            direct.chains[0].tuned.candidate
        );
    }

    #[test]
    fn deprecated_execute_shim_runs() {
        let g = tiny_attention_graph();
        let dev = DeviceSpec::a100();
        let model = compile_graph(&g, &dev, &McFuser::new(), &FlatCost).unwrap();
        let mut inputs: FxHashMap<NodeId, HostTensor> = FxHashMap::default();
        for (i, node) in g.nodes.iter().enumerate() {
            if matches!(node.op, mcfuser_ir::Op::Input) {
                let len: u64 = node.shape.iter().product();
                inputs.insert(
                    NodeId(i),
                    HostTensor::from_vec(
                        &node.shape,
                        (0..len).map(|x| ((x % 13) as f32 - 6.0) / 13.0).collect(),
                    ),
                );
            }
        }
        let values = execute_compiled(&g, &model, &inputs, 7).unwrap();
        assert_eq!(values.len(), g.nodes.len());
        assert!(values.iter().all(|t| t.data.iter().all(|v| v.is_finite())));
    }
}
