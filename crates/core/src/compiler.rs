//! End-to-end graph compilation (§V-B).
//!
//! MCFuser only tunes MBCI sub-graphs; everything else is delegated to a
//! per-operator backend ("we either continue optimization with Ansor or
//! Relay"). The delegation point is the [`OpCostModel`] trait, implemented
//! by the baseline backends — `MCFuser+Relay` and `MCFuser+Ansor` from
//! Fig. 9 are `compile_graph` with different fallbacks.
//!
//! Besides timing, the compiled model can be *executed for value*: fused
//! chains run through the simulator's functional interpreter and the
//! remaining operators through the CPU reference, so end-to-end numerics
//! are verified against pure reference evaluation.

use rustc_hash::FxHashMap;

use mcfuser_ir::{partition, ChainSpec, Graph, NodeId};
use mcfuser_sim::{execute, DeviceSpec, HostTensor, TensorStorage, TuningClock};

use crate::tuner::{McFuser, TuneError, TunedKernel};

/// Cost/tuning model for operators MCFuser does not fuse.
pub trait OpCostModel: Sync {
    /// Backend name (for reports).
    fn name(&self) -> &str;
    /// Execution time of one graph node on the device.
    fn op_time(&self, graph: &Graph, node: NodeId, dev: &DeviceSpec) -> f64;
    /// Virtual tuning cost of preparing these nodes.
    fn tuning_seconds(&self, graph: &Graph, nodes: &[NodeId], dev: &DeviceSpec) -> f64;
}

/// One fused sub-graph in a compiled model.
#[derive(Debug, Clone)]
pub struct CompiledChain {
    /// The extracted chain.
    pub chain: ChainSpec,
    /// Tuned kernel.
    pub tuned: TunedKernel,
    /// Graph nodes the kernel replaces.
    pub nodes: Vec<NodeId>,
    /// Chain data inputs as graph nodes.
    pub data_inputs: Vec<NodeId>,
    /// The graph node whose value the kernel produces.
    pub output: NodeId,
    /// Inputs stored transposed in the graph relative to chain layout.
    pub transposed_inputs: Vec<bool>,
}

/// A compiled end-to-end model.
#[derive(Debug)]
pub struct CompiledModel {
    /// Model name.
    pub name: String,
    /// Fused chains with their kernels.
    pub chains: Vec<CompiledChain>,
    /// Per-op times of the non-fused remainder.
    pub rest_times: Vec<(NodeId, f64)>,
    /// Fallback backend used for the remainder.
    pub fallback: String,
    /// Total inference time (seconds) = fused kernels + remainder.
    pub total_time: f64,
    /// Time spent in fused chains only.
    pub chain_time: f64,
    /// Virtual tuning time (chains + fallback).
    pub tuning_seconds: f64,
}

/// Compile a graph: partition, tune MBCI sub-graphs with MCFuser, price
/// the remainder with the fallback backend.
pub fn compile_graph(
    graph: &Graph,
    dev: &DeviceSpec,
    mcfuser: &McFuser,
    fallback: &dyn OpCostModel,
) -> Result<CompiledModel, TuneError> {
    let part = partition(graph, dev);
    let clock = TuningClock::new();
    let mut chains = Vec::new();
    let mut chain_time = 0.0;
    // Identical chains (e.g. the attention of every layer) share a tuned
    // kernel, exactly like a compiler caching tuned tasks.
    let mut cache: FxHashMap<String, TunedKernel> = FxHashMap::default();
    for fc in &part.chains {
        let key = format!(
            "b{}m{}d{:?}e{:?}",
            fc.chain.batch, fc.chain.m, fc.chain.dims, fc.chain.epilogues
        );
        let tuned = match cache.get(&key) {
            Some(t) => t.clone(),
            None => {
                let t = mcfuser.tune_with_clock(&fc.chain, dev, &clock)?;
                cache.insert(key, t.clone());
                t
            }
        };
        chain_time += tuned.profile.time;
        chains.push(CompiledChain {
            chain: fc.chain.clone(),
            tuned,
            nodes: fc.nodes.clone(),
            data_inputs: fc.data_inputs.clone(),
            output: fc.output,
            transposed_inputs: fc.transposed_inputs.clone(),
        });
    }
    let rest_times: Vec<(NodeId, f64)> = part
        .rest
        .iter()
        .map(|&n| (n, fallback.op_time(graph, n, dev)))
        .collect();
    let rest_total: f64 = rest_times.iter().map(|(_, t)| t).sum();
    let tuning_seconds = clock.virtual_seconds() + fallback.tuning_seconds(graph, &part.rest, dev);
    Ok(CompiledModel {
        name: graph.name.clone(),
        chains,
        rest_times,
        fallback: fallback.name().to_string(),
        total_time: chain_time + rest_total,
        chain_time,
        tuning_seconds,
    })
}

/// Execute a compiled model *for value*: fused chains run on the
/// simulator's functional interpreter, every other operator on the CPU
/// reference, and fused outputs flow into downstream operators. Returns
/// the value of every graph node (like [`mcfuser_ir::evaluate`]).
pub fn execute_compiled(
    graph: &Graph,
    model: &CompiledModel,
    inputs: &FxHashMap<NodeId, HostTensor>,
    seed: u64,
) -> Result<Vec<HostTensor>, Box<dyn std::error::Error>> {
    // Which nodes are produced by a fused kernel, and which are interior
    // to a chain (computed by the kernel, never consumed outside).
    let mut chain_output: FxHashMap<NodeId, usize> = FxHashMap::default();
    for (ci, cc) in model.chains.iter().enumerate() {
        chain_output.insert(cc.output, ci);
    }

    let mut values: Vec<Option<HostTensor>> = vec![None; graph.nodes.len()];
    for i in 0..graph.nodes.len() {
        let id = NodeId(i);
        let v = if let Some(&ci) = chain_output.get(&id) {
            let cc = &model.chains[ci];
            let program = &cc.tuned.kernel.program;
            let mut st = TensorStorage::for_program(program);
            for (j, &node) in cc.data_inputs.iter().enumerate() {
                let src = values[node.0].as_ref().expect("topological order");
                let v = if cc.transposed_inputs.get(j).copied().unwrap_or(false) {
                    src.transpose_last2()
                } else {
                    src.clone()
                };
                // Chain buffers are [batch, rows, cols]; graph tensors may
                // be flat 2-D (batch = 1) — reshape by element count.
                let want = &program.buffers[j].shape;
                let elems: u64 = want.iter().product();
                assert_eq!(elems as usize, v.data.len(), "chain input shape mismatch");
                st.tensors[j] = HostTensor::from_vec(want, v.data);
            }
            execute(program, &mut st)?;
            let out = st.tensors.last().unwrap();
            let out_shape = graph.node(id).shape.clone();
            HostTensor::from_vec(&out_shape, out.data.clone())
        } else {
            // Interior chain nodes are evaluated too (cheap, keeps the
            // value table total); everything else is plain reference.
            mcfuser_ir::evaluate_node(graph, id, &values, inputs, seed)?
        };
        values[i] = Some(v);
    }
    Ok(values.into_iter().map(Option::unwrap).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfuser_ir::GraphBuilder;
    use mcfuser_sim::DType;

    /// A trivial fallback pricing every op at a fixed cost.
    struct FlatCost;
    impl OpCostModel for FlatCost {
        fn name(&self) -> &str {
            "flat"
        }
        fn op_time(&self, _g: &Graph, _n: NodeId, _d: &DeviceSpec) -> f64 {
            10e-6
        }
        fn tuning_seconds(&self, _g: &Graph, nodes: &[NodeId], _d: &DeviceSpec) -> f64 {
            nodes.len() as f64 * 0.5
        }
    }

    fn tiny_attention_graph() -> (Graph, Vec<NodeId>) {
        let mut gb = GraphBuilder::new("attn", DType::F16);
        let q = gb.input("q", vec![2, 64, 32]);
        let k = gb.input("k", vec![2, 64, 32]);
        let v = gb.input("v", vec![2, 64, 32]);
        let s = gb.batch_matmul("qk", q, k, true);
        let p = gb.softmax("sm", s, 1.0 / (32f32).sqrt());
        let o = gb.batch_matmul("pv", p, v, false);
        let ln = gb.layer_norm("ln", o);
        (gb.finish(vec![ln]), vec![q, k, v])
    }

    #[test]
    fn compile_fuses_attention_and_prices_rest() {
        let (g, _) = tiny_attention_graph();
        let dev = DeviceSpec::a100();
        let model = compile_graph(&g, &dev, &McFuser::new(), &FlatCost).unwrap();
        assert_eq!(model.chains.len(), 1);
        assert_eq!(model.rest_times.len(), 1); // the layer norm
        assert!(model.total_time > model.chain_time);
        assert!(model.tuning_seconds > 0.0);
    }

    #[test]
    fn qk_transpose_note() {
        // The partitioner maps BatchMatMul(transpose_b=true) onto a chain
        // whose W₀ is Kᵀ; execute_compiled must still agree with the pure
        // reference. This is covered by the integration suite with real
        // tensors; here we check the compiled structure only.
        let (g, _) = tiny_attention_graph();
        let dev = DeviceSpec::a100();
        let model = compile_graph(&g, &dev, &McFuser::new(), &FlatCost).unwrap();
        let c = &model.chains[0].chain;
        assert_eq!(c.dims, vec![32, 64, 32]);
        assert!(c.has_softmax());
    }

    #[test]
    fn identical_chains_share_tuning() {
        // Two attention blocks with identical shapes → one tuning session.
        let mut gb = GraphBuilder::new("two", DType::F16);
        let mut outs = Vec::new();
        for l in 0..2 {
            let q = gb.input(format!("q{l}"), vec![2, 64, 32]);
            let k = gb.input(format!("k{l}"), vec![2, 64, 32]);
            let v = gb.input(format!("v{l}"), vec![2, 64, 32]);
            let s = gb.batch_matmul(&format!("qk{l}"), q, k, true);
            let p = gb.softmax(&format!("sm{l}"), s, 1.0);
            let o = gb.batch_matmul(&format!("pv{l}"), p, v, false);
            outs.push(o);
        }
        let g = gb.finish(outs);
        let dev = DeviceSpec::a100();
        let t0 = std::time::Instant::now();
        let model = compile_graph(&g, &dev, &McFuser::new(), &FlatCost).unwrap();
        let _ = t0;
        assert_eq!(model.chains.len(), 2);
        // Shared tuning: both chains report identical candidates.
        assert_eq!(
            model.chains[0].tuned.candidate,
            model.chains[1].tuned.candidate
        );
    }
}
