//! Heuristic exploration — Algorithm 1 of §IV-B.
//!
//! An evolutionary search in the spirit of Ansor's, with the two changes
//! the paper makes:
//!
//! 1. the learned cost model is replaced by the *analytical* model of
//!    Eqs. 2–5 (no training, estimates are free), and
//! 2. the fixed trial budget is replaced by a *convergence criterion*:
//!    when the best newly measured candidate stops improving on the
//!    incumbent by more than ε, the search stops by itself.
//!
//! Per round: estimate the whole population analytically, measure only the
//! top-n on the (simulated) device, then breed the next population by
//! mutation with selection probability ∝ 1/estimated-time.
//!
//! The search addresses the pruned space through [`CandidateSpace`]
//! indices: sampling draws an index and decodes it, the full-ranking
//! seed path streams candidates instead of cloning a materialized `Vec`,
//! and every candidate the space admits — however large the space — is
//! reachable.

use rand::distributions::WeightedIndex;
use rand::prelude::*;
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;
use mcfuser_sim::{measure_noisy, CostProfile, DeviceSpec, KernelProfile, TuningClock};
use mcfuser_tile::{lower, Candidate, LoweredKernel, LoweringOptions};

use crate::space::CandidateSpace;

/// Parameters of Algorithm 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchParams {
    /// Population size `N`.
    pub population: usize,
    /// Candidates measured per round `n` (the paper sets 8).
    pub topk: usize,
    /// Relative convergence threshold ε.
    pub epsilon: f64,
    /// Safety bound on rounds (the convergence criterion normally fires
    /// much earlier).
    pub max_rounds: usize,
    /// Minimum rounds before the convergence test may fire (gives the
    /// mutation phase a chance to explore neighbors of the model's
    /// top-ranked candidates, which matters when the coarse model
    /// misranks the true optimum just outside the top-n window).
    pub min_rounds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Analytical-model variant guiding the search.
    pub model: crate::perf_model::ModelOptions,
    /// Apply dead-loop elimination when lowering measured candidates
    /// (disabled by the Chimera baseline).
    pub dead_loop_elimination: bool,
    /// Replace the analytical model with a deterministic pseudo-random
    /// ranking (ablation: what does the model itself contribute?).
    pub random_ranking: bool,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            population: 128,
            topk: 8,
            epsilon: 0.01,
            max_rounds: 12,
            min_rounds: 3,
            seed: 0x5EED,
            model: crate::perf_model::ModelOptions::default(),
            dead_loop_elimination: true,
            random_ranking: false,
        }
    }
}

impl SearchParams {
    /// The MCFuser-Chimera configuration (§VI-A): deep-tiling space is
    /// selected by the caller; this sets the data-movement objective and
    /// disables dead-loop elimination.
    pub fn chimera() -> Self {
        SearchParams {
            model: crate::perf_model::ModelOptions::chimera(),
            dead_loop_elimination: false,
            ..Default::default()
        }
    }
}

/// How the measurement cache addresses a candidate.
///
/// Survivors of the pruned [`CandidateSpace`] are keyed by their dense
/// `u64` index — smaller and faster to hash than a full expression
/// clone + tile vector, and it lets the measured set be reported per
/// index range afterwards. A mutation can step outside the Rule-4
/// surviving set (the mutant is still lowerable, just not indexed);
/// those candidates are `Detached` and carry their own identity. The
/// two arms never alias: [`CandidateSpace::index_of`] is total on
/// survivors, so a survivor is always `Indexed`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CandidateRef {
    /// A pruning survivor, keyed by its dense space index.
    Indexed(u64),
    /// A mutant outside the surviving set.
    Detached(Candidate),
}

impl CandidateRef {
    /// Key a candidate against a space: indexed when it is a survivor.
    fn of(cand: &Candidate, space: &CandidateSpace) -> Self {
        match space.index_of(cand) {
            Some(i) => CandidateRef::Indexed(i),
            None => CandidateRef::Detached(cand.clone()),
        }
    }
}

/// Which candidates a search actually measured, in index terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MeasuredSet {
    /// Sorted distinct space indices of measured survivors.
    pub indexed: Vec<u64>,
    /// Measured mutants outside the surviving set.
    pub detached: usize,
}

impl MeasuredSet {
    /// Total distinct candidates measured.
    pub fn total(&self) -> usize {
        self.indexed.len() + self.detached
    }

    /// Histogram of the measured survivors over `buckets` equal index
    /// ranges of a space with `space_len` candidates — where in the
    /// pruned space the search actually spent its measurements.
    pub fn per_range(&self, space_len: u64, buckets: usize) -> Vec<u64> {
        let mut hist = vec![0u64; buckets.max(1)];
        if space_len == 0 {
            return hist;
        }
        let width = space_len.div_ceil(buckets.max(1) as u64).max(1);
        for &i in &self.indexed {
            let b = ((i / width) as usize).min(hist.len() - 1);
            hist[b] += 1;
        }
        hist
    }
}

/// Result of a completed search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The winning schedule.
    pub best: Candidate,
    /// Its measured kernel time (seconds).
    pub best_time: f64,
    /// The lowered kernel.
    pub kernel: LoweredKernel,
    /// The full device profile of the winner.
    pub profile: KernelProfile,
    /// Rounds executed before convergence.
    pub rounds: usize,
    /// Distinct candidates measured on the device.
    pub measured: usize,
    /// Best measured time after each round (monotone non-increasing).
    pub history: Vec<f64>,
    /// The measured set in index terms (per-range reporting).
    pub measured_set: MeasuredSet,
}

/// Full-space ranking is attempted when the pruned space has at most
/// this many candidates (analytical estimates are free; the candidates
/// stream through the scorer without being materialized).
const FULL_RANKING_LIMIT: u64 = 20_000;

/// What one device measurement produced: the lowered kernel and its
/// profile, or `None` for candidates that fail lowering / exceed launch
/// limits. Cached per candidate so round winners are never re-lowered or
/// re-measured.
type Measurement = Option<(LoweredKernel, KernelProfile)>;

fn measured_time(m: &Measurement) -> f64 {
    m.as_ref().map(|(_, p)| p.time).unwrap_or(f64::INFINITY)
}

/// Measure one candidate on the device, charging the tuning clock.
/// Returns `None` for candidates that fail lowering or exceed the
/// device's shared memory (unlaunchable).
fn measure_candidate(
    chain: &ChainSpec,
    cand: &Candidate,
    dev: &DeviceSpec,
    cost: &CostProfile,
    clock: &TuningClock,
    seed: u64,
    lower_opts: &LoweringOptions,
) -> Measurement {
    let lk = lower(chain, cand, lower_opts).ok()?;
    clock.charge_compile(cost);
    if lk.smem_bytes > dev.smem_per_block {
        // Refused by the driver at launch: costs a compile, no runtime.
        return None;
    }
    let prof = measure_noisy(&lk.program, dev, seed);
    clock.charge_measurement(cost, prof.time);
    Some((lk, prof))
}

/// Score one candidate for ranking: the analytical estimate, or the
/// deterministic pseudo-random stand-in under `random_ranking`.
fn rank_score(chain: &ChainSpec, cand: &Candidate, dev: &DeviceSpec, params: &SearchParams) -> f64 {
    let e = crate::perf_model::estimate_or_inf_with(chain, cand, dev, &params.model);
    if params.random_ranking && e.is_finite() {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        cand.hash(&mut h);
        mcfuser_sim::noise::unit_sample(params.seed, h.finish())
    } else {
        e
    }
}

/// One population member: the decoded candidate plus its cache key
/// (space index for survivors, the candidate itself for detached
/// mutants).
type Member = (CandidateRef, Candidate);

/// Cap on a single breeding weight. `1 / estimate` overflows to `+inf`
/// for a zero Eq. 2 estimate (a degenerate but reachable model output),
/// and a single non-finite weight makes [`WeightedIndex`] reject the
/// whole distribution — the round would silently fall back to uniform
/// resampling (or stop breeding entirely), discarding the selection
/// pressure. The cap keeps a zero-estimate candidate what it should be:
/// overwhelmingly likely to be selected, not poisonous. Small enough
/// that a full population of capped weights still sums finitely.
const MAX_BREED_WEIGHT: f64 = 1e300;

/// Selection weights for breeding: probability ∝ 1/estimate, with
/// non-finite estimates masked to 0 and the inverse clamped to
/// [`MAX_BREED_WEIGHT`] so no estimate — however small — can defeat
/// [`WeightedIndex`].
fn breeding_weights(estimates: &[f64]) -> Vec<f64> {
    estimates
        .iter()
        .map(|&e| {
            if !e.is_finite() || e < 0.0 {
                0.0
            } else if e == 0.0 {
                // Both zeros: `1.0 / -0.0` is -inf, which would defeat
                // WeightedIndex just like the +inf this function guards.
                MAX_BREED_WEIGHT
            } else {
                (1.0 / e).min(MAX_BREED_WEIGHT)
            }
        })
        .collect()
}

/// Breed the next population: selection probability ∝ weight, one
/// tile-size mutation per child. Returns `None` when the weights defeat
/// [`WeightedIndex`] (all-zero after masking, or non-finite) — the
/// caller must treat that as "search exhausted", *not* as failure of the
/// whole search.
fn breed_population(
    population: &[Member],
    weights: &[f64],
    space: &CandidateSpace,
    rng: &mut StdRng,
    size: usize,
) -> Option<Vec<Member>> {
    let dist = WeightedIndex::new(weights).ok()?;
    Some(
        (0..size)
            .map(|_| {
                let (_, parent) = &population[dist.sample(rng)];
                let child = mutate(parent, space, rng);
                (CandidateRef::of(&child, space), child)
            })
            .collect(),
    )
}

/// Run Algorithm 1 over a pruned space. Returns `None` only when no
/// candidate in the space is lowerable/launchable.
pub fn heuristic_search(
    chain: &ChainSpec,
    dev: &DeviceSpec,
    space: &CandidateSpace,
    params: &SearchParams,
    clock: &TuningClock,
) -> Option<SearchOutcome> {
    if space.is_empty() {
        return None;
    }
    let cost = CostProfile::triton();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let lower_opts = if params.dead_loop_elimination {
        LoweringOptions::for_device(dev)
    } else {
        LoweringOptions::for_device(dev).without_dead_loop_elimination()
    };
    let sample_idx = |rng: &mut StdRng| -> Member {
        let i = rng.gen_range(0..space.len());
        (CandidateRef::Indexed(i), space.candidate(i))
    };

    // Line 1: initial population. Analytical estimates are free, so when
    // the pruned space is small enough we rank *all* of it and seed half
    // the population with the model's best picks (the other half stays
    // random for diversity); otherwise fall back to uniform sampling.
    // Ranking streams candidates straight out of the index decoder — the
    // space is never materialized, only (index, score) pairs are kept.
    let mut population: Vec<Member> = if space.len() <= FULL_RANKING_LIMIT {
        let mut scored: Vec<(u64, f64)> = space
            .iter()
            .enumerate()
            .par_bridge()
            .map(|(i, c)| (i as u64, rank_score(chain, &c, dev, params)))
            .collect();
        // Sort by (score, index): the index tie-break keeps the ranking
        // deterministic even though par_bridge does not guarantee
        // arrival order.
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        for _ in &scored {
            clock.note_estimate();
        }
        let seeded = params.population / 2;
        let mut pop: Vec<Member> = scored
            .iter()
            .take(seeded)
            .map(|&(i, _)| (CandidateRef::Indexed(i), space.candidate(i)))
            .collect();
        while pop.len() < params.population {
            pop.push(sample_idx(&mut rng));
        }
        pop
    } else {
        (0..params.population)
            .map(|_| sample_idx(&mut rng))
            .collect()
    };

    let mut best: Option<(Candidate, f64, LoweredKernel, KernelProfile)> = None;
    // Keyed by CandidateRef: survivors hash one u64 instead of a full
    // expression + tile vector, and the key set doubles as the
    // per-index-range measurement report.
    let mut measured_cache: FxHashMap<CandidateRef, Measurement> = FxHashMap::default();
    let mut history = Vec::new();
    let mut rounds = 0usize;

    for round in 0..params.max_rounds {
        rounds = round + 1;
        // Line 5: analytical estimates (free, parallel).
        let estimates: Vec<f64> = population
            .par_iter()
            .map(|(_, c)| rank_score(chain, c, dev, params))
            .collect();
        for _ in &estimates {
            clock.note_estimate();
        }

        // Lines 6-7: sort by estimate, take top-n for real measurement.
        // The coarse model produces exact ties between candidates it
        // cannot distinguish; shuffling before the stable sort makes each
        // round sample a different subset of a tied group instead of
        // re-measuring the same one.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.shuffle(&mut rng);
        order.sort_by(|&a, &b| estimates[a].total_cmp(&estimates[b]));
        // Line 8: walk the ranking and measure the top-n *fresh* candidates
        // (Ansor-style visited filter). Candidates killed at lowering — the
        // paper's Fig. 10 quadrant II, "eliminated during PTX code
        // lowering" — cost a compile but do not consume a measurement
        // slot; the walk continues to the next-ranked candidate.
        // Previously measured population members still compete for
        // round-best via the cache.
        let mut round_best: Option<(usize, f64)> = None;
        // Fresh-measurement best — the paper's `top1_t` (its measured
        // top-k are always new candidates), used for the convergence test.
        let mut fresh_best: Option<f64> = None;
        for (i, (key, _)) in population.iter().enumerate() {
            if let Some(m) = measured_cache.get(key) {
                let t = measured_time(m);
                if t.is_finite() && round_best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    round_best = Some((i, t));
                }
            }
        }
        let mut fresh = 0usize;
        for &i in &order {
            if fresh >= params.topk {
                break;
            }
            if !estimates[i].is_finite() || measured_cache.contains_key(&population[i].0) {
                continue;
            }
            let (key, cand) = population[i].clone();
            let m = measure_candidate(chain, &cand, dev, &cost, clock, params.seed, &lower_opts);
            let t = measured_time(&m);
            measured_cache.insert(key, m);
            if t.is_finite() {
                fresh += 1;
                if fresh_best.map(|b| t < b).unwrap_or(true) {
                    fresh_best = Some(t);
                }
                if round_best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    round_best = Some((i, t));
                }
            }
        }

        let Some((top1_idx, top1_t)) = round_best else {
            // Nothing measurable this round: resample and retry.
            population = (0..params.population)
                .map(|_| sample_idx(&mut rng))
                .collect();
            continue;
        };
        let (top1_key, top1_cand) = population[top1_idx].clone();
        // The winner's kernel + profile come straight from the
        // measurement cache — a finite round-best time implies a
        // successful measurement, so no re-lowering and no panic path.
        let (top1_lk, top1_prof) = measured_cache
            .get(&top1_key)
            .and_then(|m| m.clone())
            .expect("round-best candidate has a cached measurement");

        // Lines 10-12: convergence test against the incumbent, on freshly
        // measured candidates only (re-reading the cache is not evidence
        // of convergence). A round with nothing fresh to measure has
        // exhausted its neighborhood and also counts as converged.
        let converged = round + 1 >= params.min_rounds
            && match (&best, fresh_best) {
                (Some((_, best_t, _, _)), Some(fb)) => fb >= best_t * (1.0 - params.epsilon),
                (Some(_), None) => true,
                _ => false,
            };

        // Lines 13-16: update incumbent.
        let improved = best
            .as_ref()
            .map(|(_, bt, _, _)| top1_t < *bt)
            .unwrap_or(true);
        if improved {
            best = Some((top1_cand, top1_t, top1_lk, top1_prof));
        }
        history.push(best.as_ref().unwrap().1);
        if converged {
            break;
        }

        // Line 17: next population by estimate-weighted mutation.
        let weights = breeding_weights(&estimates);
        if weights.iter().sum::<f64>() <= 0.0 {
            population = (0..params.population)
                .map(|_| sample_idx(&mut rng))
                .collect();
            continue;
        }
        match breed_population(&population, &weights, space, &mut rng, params.population) {
            Some(next) => population = next,
            // Degenerate weights (e.g. an estimate so small its inverse
            // overflows to infinity): the selection distribution cannot
            // be built, but an incumbent found in earlier rounds is still
            // a perfectly good answer — stop breeding, keep the best.
            None => break,
        }
    }

    let (best_cand, best_time, kernel, profile) = best?;
    let mut measured_set = MeasuredSet::default();
    for key in measured_cache.keys() {
        match key {
            CandidateRef::Indexed(i) => measured_set.indexed.push(*i),
            CandidateRef::Detached(_) => measured_set.detached += 1,
        }
    }
    measured_set.indexed.sort_unstable();
    Some(SearchOutcome {
        best: best_cand,
        best_time,
        kernel,
        profile,
        rounds,
        measured: measured_cache.len(),
        history,
        measured_set,
    })
}

/// Mutate one loop's tile size to a neighboring option (the paper's
/// mutation operator: "one loop is chosen to mutate the tile size").
fn mutate(parent: &Candidate, space: &CandidateSpace, rng: &mut StdRng) -> Candidate {
    let mut child = parent.clone();
    let axis = rng.gen_range(0..child.tiles.len());
    let domain = &space.tile_domains[axis];
    if domain.len() <= 1 {
        return child;
    }
    let cur = domain
        .iter()
        .position(|&t| t == child.tiles[axis])
        .unwrap_or(0);
    let next = if rng.gen_bool(0.5) && cur + 1 < domain.len() {
        cur + 1
    } else {
        cur.saturating_sub(1)
    };
    child.tiles[axis] = domain[next];
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::prune;
    use crate::space::SearchSpace;

    fn pruned_space(chain: &ChainSpec, dev: &DeviceSpec) -> CandidateSpace {
        let space = SearchSpace::generate(chain);
        prune(chain, dev, &space)
    }

    fn search_chain(chain: &ChainSpec, dev: &DeviceSpec) -> SearchOutcome {
        let pruned = pruned_space(chain, dev);
        let clock = TuningClock::new();
        heuristic_search(chain, dev, &pruned, &SearchParams::default(), &clock)
            .expect("search finds a kernel")
    }

    #[test]
    fn finds_a_valid_kernel_for_gemm_chain() {
        let chain = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let out = search_chain(&chain, &dev);
        assert!(out.best_time.is_finite() && out.best_time > 0.0);
        assert!(out.kernel.smem_bytes <= dev.smem_per_block);
        assert!(out.measured > 0);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let chain = ChainSpec::gemm_chain("g4", 1, 512, 512, 256, 256);
        let out = search_chain(&chain, &DeviceSpec::a100());
        for w in out.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn converges_before_max_rounds_usually() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let out = search_chain(&chain, &DeviceSpec::a100());
        assert!(out.rounds <= SearchParams::default().max_rounds);
    }

    #[test]
    fn search_is_deterministic() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let a = search_chain(&chain, &dev);
        let b = search_chain(&chain, &dev);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_time, b.best_time);
    }

    #[test]
    fn beats_the_worst_candidate_clearly() {
        let chain = ChainSpec::gemm_chain("g", 1, 1024, 1024, 128, 128);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let clock = TuningClock::new();
        let out =
            heuristic_search(&chain, &dev, &pruned, &SearchParams::default(), &clock).unwrap();
        // Measure a deliberately bad candidate (tiny tiles).
        let bad = pruned
            .iter()
            .find(|c| c.tiles.iter().all(|&t| t == 16))
            .expect("tiny-tile candidate survives pruning");
        let bad_t = measured_time(&measure_candidate(
            &chain,
            &bad,
            &dev,
            &CostProfile::triton(),
            &clock,
            0,
            &LoweringOptions::for_device(&dev),
        ));
        assert!(
            out.best_time < 0.8 * bad_t,
            "best {} vs bad {}",
            out.best_time,
            bad_t
        );
    }

    #[test]
    fn attention_chain_searchable() {
        let chain = ChainSpec::attention("s1", 8, 512, 512, 64, 64);
        let dev = DeviceSpec::a100();
        let out = search_chain(&chain, &dev);
        assert!(out.best_time.is_finite());
        // The softmax chain must have picked a schedule where k is inside n
        // or k is a single tile — guaranteed by lowering legality.
        assert!(out.kernel.program.validate().is_ok());
    }

    #[test]
    fn tuning_clock_is_charged() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let clock = TuningClock::new();
        let _ = heuristic_search(&chain, &dev, &pruned, &SearchParams::default(), &clock);
        let rep = clock.report();
        assert!(rep.measurements > 0);
        assert!(rep.estimates as usize >= SearchParams::default().population);
        assert_eq!(rep.train_rounds, 0, "the analytical model never trains");
        assert!(rep.virtual_seconds > 0.0);
    }

    #[test]
    fn degenerate_weights_defeat_weighted_index_but_not_the_search() {
        // Regression for the `WeightedIndex::new(..).ok()?` bug: a weight
        // vector with an infinity (1/estimate overflow) makes the
        // distribution unbuildable. Previously the whole search returned
        // `None`, discarding an incumbent it had already measured; now
        // breeding reports failure and the search keeps the incumbent.
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let mut rng = StdRng::seed_from_u64(9);
        let population: Vec<Member> = (0..4)
            .map(|i| {
                let idx = i % pruned.len();
                (CandidateRef::Indexed(idx), pruned.candidate(idx))
            })
            .collect();
        for weights in [
            vec![f64::INFINITY, 1.0, 1.0, 1.0],
            vec![f64::NAN, 1.0, 1.0, 1.0],
            vec![-1.0, 1.0, 1.0, 1.0],
        ] {
            assert!(
                breed_population(&population, &weights, &pruned, &mut rng, 4).is_none(),
                "weights {weights:?} must defeat WeightedIndex"
            );
        }
        // Sane weights breed a full population.
        let next = breed_population(&population, &[1.0, 2.0, 3.0, 4.0], &pruned, &mut rng, 8)
            .expect("finite weights breed");
        assert_eq!(next.len(), 8);
    }

    #[test]
    fn zero_estimates_breed_instead_of_defeating_weighted_index() {
        // Regression: weights were computed as a bare `1.0 / e`, so a
        // zero Eq. 2 estimate produced a `+inf` weight, WeightedIndex
        // rejected the whole distribution, and the round silently lost
        // its selection pressure (uniform resampling / early stop).
        // Clamped weights must keep the distribution buildable and give
        // the zero-estimate member (the model's "fastest") dominant —
        // but not exclusive — selection probability.
        let weights = breeding_weights(&[0.0, -0.0, 1e-3, f64::INFINITY, f64::NAN, -1.0]);
        assert_eq!(
            weights,
            vec![MAX_BREED_WEIGHT, MAX_BREED_WEIGHT, 1e3, 0.0, 0.0, 0.0]
        );
        assert!(weights.iter().all(|w| w.is_finite()));
        assert!(weights.iter().sum::<f64>().is_finite());
        assert!(WeightedIndex::new(&weights).is_ok());

        // End to end through breed_population: a population whose
        // estimates include an exact zero still breeds a full next
        // generation.
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let pruned = pruned_space(&chain, &DeviceSpec::a100());
        let population: Vec<Member> = (0..4)
            .map(|i| {
                let idx = i % pruned.len();
                (CandidateRef::Indexed(idx), pruned.candidate(idx))
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let next = breed_population(
            &population,
            &breeding_weights(&[0.0, 2e-6, 3e-6, 5e-6]),
            &pruned,
            &mut rng,
            8,
        )
        .expect("a zero estimate must not defeat breeding");
        assert_eq!(next.len(), 8);
        // An all-zero-weight vector (every estimate non-finite) is still
        // rejected — that is the caller's resample path, by design.
        assert!(breed_population(
            &population,
            &breeding_weights(&[f64::NAN; 4]),
            &pruned,
            &mut rng,
            4
        )
        .is_none());
    }

    #[test]
    fn measured_set_reports_the_searched_index_ranges() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let clock = TuningClock::new();
        let out =
            heuristic_search(&chain, &dev, &pruned, &SearchParams::default(), &clock).unwrap();
        // Every measured candidate is accounted for, exactly once.
        assert_eq!(out.measured_set.total(), out.measured);
        assert!(
            out.measured_set.indexed.windows(2).all(|w| w[0] < w[1]),
            "indices are sorted and distinct"
        );
        // Indexed entries decode back to candidates of this space, and
        // detached entries are exactly the mutants outside it.
        for &i in &out.measured_set.indexed {
            assert!(i < pruned.len());
            assert_eq!(pruned.index_of(&pruned.candidate(i)), Some(i));
        }
        // The histogram over index ranges covers all indexed entries.
        let hist = out.measured_set.per_range(pruned.len(), 8);
        assert_eq!(hist.len(), 8);
        assert_eq!(
            hist.iter().sum::<u64>() as usize,
            out.measured_set.indexed.len()
        );
    }

    #[test]
    fn detached_mutants_get_their_own_cache_identity() {
        // A candidate outside the surviving set must key as Detached and
        // never collide with an Indexed survivor.
        let chain = ChainSpec::gemm_chain("g", 1, 1024, 1024, 512, 512);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let survivor = pruned.candidate(0);
        assert_eq!(
            CandidateRef::of(&survivor, &pruned),
            CandidateRef::Indexed(0)
        );
        let mut rng = StdRng::seed_from_u64(21);
        let outside = std::iter::repeat_with(|| pruned.sample_rule3(&mut rng))
            .take(400)
            .find(|c| pruned.index_of(c).is_none())
            .expect("some Rule-3 combination is rejected by Rule 4");
        assert_eq!(
            CandidateRef::of(&outside, &pruned),
            CandidateRef::Detached(outside.clone())
        );
    }

    #[test]
    fn round_winner_measurement_is_cached_not_repeated() {
        // The winner's kernel/profile must come from the measurement
        // cache: searching charges exactly one compile per *distinct*
        // measured candidate (re-lowering the winner each round used to
        // add extra uncharged work and a panic path).
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let clock = TuningClock::new();
        let out =
            heuristic_search(&chain, &dev, &pruned, &SearchParams::default(), &clock).unwrap();
        // The returned kernel is exactly what measuring `best` produces.
        let fresh = TuningClock::new();
        let (lk, prof) = measure_candidate(
            &chain,
            &out.best,
            &dev,
            &CostProfile::triton(),
            &fresh,
            SearchParams::default().seed,
            &LoweringOptions::for_device(&dev),
        )
        .expect("winner measures");
        assert_eq!(lk.smem_bytes, out.kernel.smem_bytes);
        assert_eq!(prof.time, out.best_time);
    }
}
