//! Heuristic exploration — Algorithm 1 of §IV-B.
//!
//! An evolutionary search in the spirit of Ansor's, with the two changes
//! the paper makes:
//!
//! 1. the learned cost model is replaced by the *analytical* model of
//!    Eqs. 2–5 (no training, estimates are free), and
//! 2. the fixed trial budget is replaced by a *convergence criterion*:
//!    when the best newly measured candidate stops improving on the
//!    incumbent by more than ε, the search stops by itself.
//!
//! Per round: estimate the whole population analytically, measure only the
//! top-n on the (simulated) device, then breed the next population by
//! mutation with selection probability ∝ 1/estimated-time.
//!
//! The search addresses the pruned space through [`CandidateSpace`]
//! indices: sampling draws an index and decodes it, the full-ranking
//! seed path streams candidates instead of cloning a materialized `Vec`,
//! and every candidate the space admits — however large the space — is
//! reachable.

use rand::distributions::WeightedIndex;
use rand::prelude::*;
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use mcfuser_ir::ChainSpec;
use mcfuser_sim::{measure_noisy, CostProfile, DeviceSpec, KernelProfile, TuningClock};
use mcfuser_tile::{lower, Candidate, LoweredKernel, LoweringOptions};

use crate::space::CandidateSpace;

/// Parameters of Algorithm 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchParams {
    /// Population size `N`.
    pub population: usize,
    /// Candidates measured per round `n` (the paper sets 8).
    pub topk: usize,
    /// Relative convergence threshold ε.
    pub epsilon: f64,
    /// Safety bound on rounds (the convergence criterion normally fires
    /// much earlier).
    pub max_rounds: usize,
    /// Minimum rounds before the convergence test may fire (gives the
    /// mutation phase a chance to explore neighbors of the model's
    /// top-ranked candidates, which matters when the coarse model
    /// misranks the true optimum just outside the top-n window).
    pub min_rounds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Analytical-model variant guiding the search.
    pub model: crate::perf_model::ModelOptions,
    /// Apply dead-loop elimination when lowering measured candidates
    /// (disabled by the Chimera baseline).
    pub dead_loop_elimination: bool,
    /// Replace the analytical model with a deterministic pseudo-random
    /// ranking (ablation: what does the model itself contribute?).
    pub random_ranking: bool,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            population: 128,
            topk: 8,
            epsilon: 0.01,
            max_rounds: 12,
            min_rounds: 3,
            seed: 0x5EED,
            model: crate::perf_model::ModelOptions::default(),
            dead_loop_elimination: true,
            random_ranking: false,
        }
    }
}

impl SearchParams {
    /// The MCFuser-Chimera configuration (§VI-A): deep-tiling space is
    /// selected by the caller; this sets the data-movement objective and
    /// disables dead-loop elimination.
    pub fn chimera() -> Self {
        SearchParams {
            model: crate::perf_model::ModelOptions::chimera(),
            dead_loop_elimination: false,
            ..Default::default()
        }
    }
}

/// Result of a completed search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The winning schedule.
    pub best: Candidate,
    /// Its measured kernel time (seconds).
    pub best_time: f64,
    /// The lowered kernel.
    pub kernel: LoweredKernel,
    /// The full device profile of the winner.
    pub profile: KernelProfile,
    /// Rounds executed before convergence.
    pub rounds: usize,
    /// Distinct candidates measured on the device.
    pub measured: usize,
    /// Best measured time after each round (monotone non-increasing).
    pub history: Vec<f64>,
}

/// Full-space ranking is attempted when the pruned space has at most
/// this many candidates (analytical estimates are free; the candidates
/// stream through the scorer without being materialized).
const FULL_RANKING_LIMIT: u64 = 20_000;

/// What one device measurement produced: the lowered kernel and its
/// profile, or `None` for candidates that fail lowering / exceed launch
/// limits. Cached per candidate so round winners are never re-lowered or
/// re-measured.
type Measurement = Option<(LoweredKernel, KernelProfile)>;

fn measured_time(m: &Measurement) -> f64 {
    m.as_ref().map(|(_, p)| p.time).unwrap_or(f64::INFINITY)
}

/// Measure one candidate on the device, charging the tuning clock.
/// Returns `None` for candidates that fail lowering or exceed the
/// device's shared memory (unlaunchable).
fn measure_candidate(
    chain: &ChainSpec,
    cand: &Candidate,
    dev: &DeviceSpec,
    cost: &CostProfile,
    clock: &TuningClock,
    seed: u64,
    lower_opts: &LoweringOptions,
) -> Measurement {
    let lk = lower(chain, cand, lower_opts).ok()?;
    clock.charge_compile(cost);
    if lk.smem_bytes > dev.smem_per_block {
        // Refused by the driver at launch: costs a compile, no runtime.
        return None;
    }
    let prof = measure_noisy(&lk.program, dev, seed);
    clock.charge_measurement(cost, prof.time);
    Some((lk, prof))
}

/// Score one candidate for ranking: the analytical estimate, or the
/// deterministic pseudo-random stand-in under `random_ranking`.
fn rank_score(chain: &ChainSpec, cand: &Candidate, dev: &DeviceSpec, params: &SearchParams) -> f64 {
    let e = crate::perf_model::estimate_or_inf_with(chain, cand, dev, &params.model);
    if params.random_ranking && e.is_finite() {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        cand.hash(&mut h);
        mcfuser_sim::noise::unit_sample(params.seed, h.finish())
    } else {
        e
    }
}

/// Breed the next population: selection probability ∝ weight, one
/// tile-size mutation per child. Returns `None` when the weights defeat
/// [`WeightedIndex`] (all-zero after masking, or non-finite) — the
/// caller must treat that as "search exhausted", *not* as failure of the
/// whole search.
fn breed_population(
    population: &[Candidate],
    weights: &[f64],
    space: &CandidateSpace,
    rng: &mut StdRng,
    size: usize,
) -> Option<Vec<Candidate>> {
    let dist = WeightedIndex::new(weights).ok()?;
    Some(
        (0..size)
            .map(|_| {
                let parent = &population[dist.sample(rng)];
                mutate(parent, space, rng)
            })
            .collect(),
    )
}

/// Run Algorithm 1 over a pruned space. Returns `None` only when no
/// candidate in the space is lowerable/launchable.
pub fn heuristic_search(
    chain: &ChainSpec,
    dev: &DeviceSpec,
    space: &CandidateSpace,
    params: &SearchParams,
    clock: &TuningClock,
) -> Option<SearchOutcome> {
    if space.is_empty() {
        return None;
    }
    let cost = CostProfile::triton();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let lower_opts = if params.dead_loop_elimination {
        LoweringOptions::for_device(dev)
    } else {
        LoweringOptions::for_device(dev).without_dead_loop_elimination()
    };
    let sample_idx =
        |rng: &mut StdRng| -> Candidate { space.candidate(rng.gen_range(0..space.len())) };

    // Line 1: initial population. Analytical estimates are free, so when
    // the pruned space is small enough we rank *all* of it and seed half
    // the population with the model's best picks (the other half stays
    // random for diversity); otherwise fall back to uniform sampling.
    // Ranking streams candidates straight out of the index decoder — the
    // space is never materialized, only (index, score) pairs are kept.
    let mut population: Vec<Candidate> = if space.len() <= FULL_RANKING_LIMIT {
        let mut scored: Vec<(u64, f64)> = space
            .iter()
            .enumerate()
            .par_bridge()
            .map(|(i, c)| (i as u64, rank_score(chain, &c, dev, params)))
            .collect();
        // Sort by (score, index): the index tie-break keeps the ranking
        // deterministic even though par_bridge does not guarantee
        // arrival order.
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        for _ in &scored {
            clock.note_estimate();
        }
        let seeded = params.population / 2;
        let mut pop: Vec<Candidate> = scored
            .iter()
            .take(seeded)
            .map(|&(i, _)| space.candidate(i))
            .collect();
        while pop.len() < params.population {
            pop.push(sample_idx(&mut rng));
        }
        pop
    } else {
        (0..params.population)
            .map(|_| sample_idx(&mut rng))
            .collect()
    };

    let mut best: Option<(Candidate, f64, LoweredKernel, KernelProfile)> = None;
    let mut measured_cache: FxHashMap<Candidate, Measurement> = FxHashMap::default();
    let mut history = Vec::new();
    let mut rounds = 0usize;

    for round in 0..params.max_rounds {
        rounds = round + 1;
        // Line 5: analytical estimates (free, parallel).
        let estimates: Vec<f64> = population
            .par_iter()
            .map(|c| rank_score(chain, c, dev, params))
            .collect();
        for _ in &estimates {
            clock.note_estimate();
        }

        // Lines 6-7: sort by estimate, take top-n for real measurement.
        // The coarse model produces exact ties between candidates it
        // cannot distinguish; shuffling before the stable sort makes each
        // round sample a different subset of a tied group instead of
        // re-measuring the same one.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.shuffle(&mut rng);
        order.sort_by(|&a, &b| estimates[a].total_cmp(&estimates[b]));
        // Line 8: walk the ranking and measure the top-n *fresh* candidates
        // (Ansor-style visited filter). Candidates killed at lowering — the
        // paper's Fig. 10 quadrant II, "eliminated during PTX code
        // lowering" — cost a compile but do not consume a measurement
        // slot; the walk continues to the next-ranked candidate.
        // Previously measured population members still compete for
        // round-best via the cache.
        let mut round_best: Option<(usize, f64)> = None;
        // Fresh-measurement best — the paper's `top1_t` (its measured
        // top-k are always new candidates), used for the convergence test.
        let mut fresh_best: Option<f64> = None;
        for (i, cand) in population.iter().enumerate() {
            if let Some(m) = measured_cache.get(cand) {
                let t = measured_time(m);
                if t.is_finite() && round_best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    round_best = Some((i, t));
                }
            }
        }
        let mut fresh = 0usize;
        for &i in &order {
            if fresh >= params.topk {
                break;
            }
            if !estimates[i].is_finite() || measured_cache.contains_key(&population[i]) {
                continue;
            }
            let cand = population[i].clone();
            let m = measure_candidate(chain, &cand, dev, &cost, clock, params.seed, &lower_opts);
            let t = measured_time(&m);
            measured_cache.insert(cand, m);
            if t.is_finite() {
                fresh += 1;
                if fresh_best.map(|b| t < b).unwrap_or(true) {
                    fresh_best = Some(t);
                }
                if round_best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    round_best = Some((i, t));
                }
            }
        }

        let Some((top1_idx, top1_t)) = round_best else {
            // Nothing measurable this round: resample and retry.
            population = (0..params.population)
                .map(|_| sample_idx(&mut rng))
                .collect();
            continue;
        };
        let top1_cand = population[top1_idx].clone();
        // The winner's kernel + profile come straight from the
        // measurement cache — a finite round-best time implies a
        // successful measurement, so no re-lowering and no panic path.
        let (top1_lk, top1_prof) = measured_cache
            .get(&top1_cand)
            .and_then(|m| m.clone())
            .expect("round-best candidate has a cached measurement");

        // Lines 10-12: convergence test against the incumbent, on freshly
        // measured candidates only (re-reading the cache is not evidence
        // of convergence). A round with nothing fresh to measure has
        // exhausted its neighborhood and also counts as converged.
        let converged = round + 1 >= params.min_rounds
            && match (&best, fresh_best) {
                (Some((_, best_t, _, _)), Some(fb)) => fb >= best_t * (1.0 - params.epsilon),
                (Some(_), None) => true,
                _ => false,
            };

        // Lines 13-16: update incumbent.
        let improved = best
            .as_ref()
            .map(|(_, bt, _, _)| top1_t < *bt)
            .unwrap_or(true);
        if improved {
            best = Some((top1_cand, top1_t, top1_lk, top1_prof));
        }
        history.push(best.as_ref().unwrap().1);
        if converged {
            break;
        }

        // Line 17: next population by estimate-weighted mutation.
        let weights: Vec<f64> = estimates
            .iter()
            .map(|&e| if e.is_finite() { 1.0 / e } else { 0.0 })
            .collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            population = (0..params.population)
                .map(|_| sample_idx(&mut rng))
                .collect();
            continue;
        }
        match breed_population(&population, &weights, space, &mut rng, params.population) {
            Some(next) => population = next,
            // Degenerate weights (e.g. an estimate so small its inverse
            // overflows to infinity): the selection distribution cannot
            // be built, but an incumbent found in earlier rounds is still
            // a perfectly good answer — stop breeding, keep the best.
            None => break,
        }
    }

    let (best_cand, best_time, kernel, profile) = best?;
    Some(SearchOutcome {
        best: best_cand,
        best_time,
        kernel,
        profile,
        rounds,
        measured: measured_cache.len(),
        history,
    })
}

/// Mutate one loop's tile size to a neighboring option (the paper's
/// mutation operator: "one loop is chosen to mutate the tile size").
fn mutate(parent: &Candidate, space: &CandidateSpace, rng: &mut StdRng) -> Candidate {
    let mut child = parent.clone();
    let axis = rng.gen_range(0..child.tiles.len());
    let domain = &space.tile_domains[axis];
    if domain.len() <= 1 {
        return child;
    }
    let cur = domain
        .iter()
        .position(|&t| t == child.tiles[axis])
        .unwrap_or(0);
    let next = if rng.gen_bool(0.5) && cur + 1 < domain.len() {
        cur + 1
    } else {
        cur.saturating_sub(1)
    };
    child.tiles[axis] = domain[next];
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::prune;
    use crate::space::SearchSpace;

    fn pruned_space(chain: &ChainSpec, dev: &DeviceSpec) -> CandidateSpace {
        let space = SearchSpace::generate(chain);
        prune(chain, dev, &space)
    }

    fn search_chain(chain: &ChainSpec, dev: &DeviceSpec) -> SearchOutcome {
        let pruned = pruned_space(chain, dev);
        let clock = TuningClock::new();
        heuristic_search(chain, dev, &pruned, &SearchParams::default(), &clock)
            .expect("search finds a kernel")
    }

    #[test]
    fn finds_a_valid_kernel_for_gemm_chain() {
        let chain = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let out = search_chain(&chain, &dev);
        assert!(out.best_time.is_finite() && out.best_time > 0.0);
        assert!(out.kernel.smem_bytes <= dev.smem_per_block);
        assert!(out.measured > 0);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let chain = ChainSpec::gemm_chain("g4", 1, 512, 512, 256, 256);
        let out = search_chain(&chain, &DeviceSpec::a100());
        for w in out.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn converges_before_max_rounds_usually() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let out = search_chain(&chain, &DeviceSpec::a100());
        assert!(out.rounds <= SearchParams::default().max_rounds);
    }

    #[test]
    fn search_is_deterministic() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let a = search_chain(&chain, &dev);
        let b = search_chain(&chain, &dev);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_time, b.best_time);
    }

    #[test]
    fn beats_the_worst_candidate_clearly() {
        let chain = ChainSpec::gemm_chain("g", 1, 1024, 1024, 128, 128);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let clock = TuningClock::new();
        let out =
            heuristic_search(&chain, &dev, &pruned, &SearchParams::default(), &clock).unwrap();
        // Measure a deliberately bad candidate (tiny tiles).
        let bad = pruned
            .iter()
            .find(|c| c.tiles.iter().all(|&t| t == 16))
            .expect("tiny-tile candidate survives pruning");
        let bad_t = measured_time(&measure_candidate(
            &chain,
            &bad,
            &dev,
            &CostProfile::triton(),
            &clock,
            0,
            &LoweringOptions::for_device(&dev),
        ));
        assert!(
            out.best_time < 0.8 * bad_t,
            "best {} vs bad {}",
            out.best_time,
            bad_t
        );
    }

    #[test]
    fn attention_chain_searchable() {
        let chain = ChainSpec::attention("s1", 8, 512, 512, 64, 64);
        let dev = DeviceSpec::a100();
        let out = search_chain(&chain, &dev);
        assert!(out.best_time.is_finite());
        // The softmax chain must have picked a schedule where k is inside n
        // or k is a single tile — guaranteed by lowering legality.
        assert!(out.kernel.program.validate().is_ok());
    }

    #[test]
    fn tuning_clock_is_charged() {
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let clock = TuningClock::new();
        let _ = heuristic_search(&chain, &dev, &pruned, &SearchParams::default(), &clock);
        let rep = clock.report();
        assert!(rep.measurements > 0);
        assert!(rep.estimates as usize >= SearchParams::default().population);
        assert_eq!(rep.train_rounds, 0, "the analytical model never trains");
        assert!(rep.virtual_seconds > 0.0);
    }

    #[test]
    fn degenerate_weights_defeat_weighted_index_but_not_the_search() {
        // Regression for the `WeightedIndex::new(..).ok()?` bug: a weight
        // vector with an infinity (1/estimate overflow) makes the
        // distribution unbuildable. Previously the whole search returned
        // `None`, discarding an incumbent it had already measured; now
        // breeding reports failure and the search keeps the incumbent.
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let mut rng = StdRng::seed_from_u64(9);
        let population: Vec<Candidate> =
            (0..4).map(|i| pruned.candidate(i % pruned.len())).collect();
        for weights in [
            vec![f64::INFINITY, 1.0, 1.0, 1.0],
            vec![f64::NAN, 1.0, 1.0, 1.0],
            vec![-1.0, 1.0, 1.0, 1.0],
        ] {
            assert!(
                breed_population(&population, &weights, &pruned, &mut rng, 4).is_none(),
                "weights {weights:?} must defeat WeightedIndex"
            );
        }
        // Sane weights breed a full population.
        let next = breed_population(&population, &[1.0, 2.0, 3.0, 4.0], &pruned, &mut rng, 8)
            .expect("finite weights breed");
        assert_eq!(next.len(), 8);
    }

    #[test]
    fn round_winner_measurement_is_cached_not_repeated() {
        // The winner's kernel/profile must come from the measurement
        // cache: searching charges exactly one compile per *distinct*
        // measured candidate (re-lowering the winner each round used to
        // add extra uncharged work and a panic path).
        let chain = ChainSpec::gemm_chain("g", 1, 512, 256, 64, 64);
        let dev = DeviceSpec::a100();
        let pruned = pruned_space(&chain, &dev);
        let clock = TuningClock::new();
        let out =
            heuristic_search(&chain, &dev, &pruned, &SearchParams::default(), &clock).unwrap();
        // The returned kernel is exactly what measuring `best` produces.
        let fresh = TuningClock::new();
        let (lk, prof) = measure_candidate(
            &chain,
            &out.best,
            &dev,
            &CostProfile::triton(),
            &fresh,
            SearchParams::default().seed,
            &LoweringOptions::for_device(&dev),
        )
        .expect("winner measures");
        assert_eq!(lk.smem_bytes, out.kernel.smem_bytes);
        assert_eq!(prof.time, out.best_time);
    }
}
