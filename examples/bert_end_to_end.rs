//! End-to-end BERT: compile once, serve many.
//!
//! One `FusionEngine` session partitions the encoder into MBCI
//! sub-graphs, tunes them (in parallel), and prices the rest with
//! Relay. The compiled model is then frozen into an `ExecutablePlan` —
//! topological steps, named input bindings, and the buffer plan are all
//! computed once — and registered in a `ModelRuntime`, which N threads
//! hammer concurrently with deterministic per-seed results.
//!
//! ```sh
//! cargo run --release --example bert_end_to_end
//! ```

use std::sync::Arc;

use mcfuser::baselines::Relay;
use mcfuser::ir::evaluate;
use mcfuser::prelude::*;
use mcfuser::workloads::{bert_graph, BertConfig};

/// Deterministic ramp tensor for an input binding.
fn ramp(shape: &[u64]) -> HostTensor {
    let len: u64 = shape.iter().product();
    HostTensor::from_vec(
        shape,
        (0..len).map(|x| ((x % 31) as f32 - 15.0) / 31.0).collect(),
    )
}

fn main() {
    // A 2-layer BERT-Small-style encoder at sequence 128 (kept small so
    // the functional verification runs in seconds).
    let cfg = BertConfig {
        layers: 2,
        hidden: 256,
        heads: 4,
        seq: 128,
        intermediate: 1024,
    };
    let graph = bert_graph("bert-mini", &cfg);
    let device = DeviceSpec::a100();
    println!(
        "model: {} ({} nodes, {:.2} GFLOP)",
        graph.name,
        graph.nodes.len(),
        graph.total_flops() / 1e9
    );

    // --- Compile time: one session, one plan -------------------------
    let engine = FusionEngine::builder(device)
        .fallback(Relay::new())
        .parallelism(0) // all cores
        .build();
    let model = engine.compile(&graph).expect("compilation succeeds");
    println!("fused chains      : {}", model.chains.len());
    for c in &model.chains {
        println!(
            "  {} -> {} ({:.2} us{})",
            c.chain.name,
            c.tuned.candidate.describe(&c.chain),
            c.tuned.profile.time * 1e6,
            if c.cache_hit { ", cached" } else { "" }
        );
    }
    println!("chain time        : {:.1} us", model.chain_time * 1e6);
    println!("total time        : {:.1} us", model.total_time * 1e6);
    println!(
        "virtual tuning    : {:.0} s ({})",
        model.tuning_seconds, model.fallback
    );

    let plan = model.plan(&graph).expect("plan freezes");
    println!(
        "\nplan: {} steps ({} fused kernels), peak live buffers {}/{} nodes",
        plan.steps().len(),
        plan.fused_kernels(),
        plan.buffer_plan().peak_live(),
        plan.buffer_plan().total_nodes(),
    );
    assert!(
        plan.buffer_plan().peak_live() < plan.buffer_plan().total_nodes(),
        "liveness recycling must beat keep-everything"
    );

    // --- Run time: serve N concurrent requests by input *name* -------
    let runtime = Arc::new(ModelRuntime::new());
    runtime.register("bert", plan);
    if let Some(cache) = engine.cache_handle() {
        runtime.attach_cache(cache);
    }

    let inputs = {
        let mut set = InputSet::new();
        for b in runtime.plan("bert").unwrap().inputs() {
            set.insert(b.name.clone(), ramp(&b.shape));
        }
        set
    };

    // Serial reference pass: one output per seed.
    let seeds: Vec<u64> = (0..4).collect();
    let serial: Vec<HostTensor> = seeds
        .iter()
        .map(|&s| {
            runtime
                .infer("bert", &inputs, RunOptions::seeded(s))
                .expect("serial request")
                .primary()
                .clone()
        })
        .collect();

    // Concurrent pass: 4 threads × 4 requests each, interleaved seeds.
    // Outputs must be bit-identical to the serial pass per seed.
    std::thread::scope(|scope| {
        for t in 0..4 {
            let runtime = runtime.clone();
            let inputs = &inputs;
            let seeds = &seeds;
            let serial = &serial;
            scope.spawn(move || {
                for r in 0..4 {
                    let seed = seeds[(t + r) % seeds.len()];
                    let out = runtime
                        .infer("bert", inputs, RunOptions::seeded(seed))
                        .expect("concurrent request");
                    assert_eq!(
                        out.primary().data,
                        serial[seed as usize].data,
                        "thread {t} request {r} must be bit-identical to serial"
                    );
                }
            });
        }
    });

    let stats = runtime.stats();
    let bert = stats.plan("bert").expect("bert served");
    println!(
        "served {} requests: p50 {:.1} us, p95 {:.1} us, {:.2} MB moved",
        stats.requests,
        bert.p50_latency * 1e6,
        bert.p95_latency * 1e6,
        bert.bytes_moved / 1e6,
    );
    assert_eq!(stats.requests, 4 + 16, "serial + concurrent requests");

    // Functional verification: the served output must match pure
    // reference evaluation of the whole graph.
    let mut node_inputs: rustc_hash::FxHashMap<mcfuser::ir::NodeId, HostTensor> =
        Default::default();
    for (_, node) in graph.input_bindings() {
        node_inputs.insert(node, ramp(&graph.node(node).shape));
    }
    let reference = evaluate(&graph, &node_inputs, 2).expect("reference evaluation");
    let served = runtime
        .infer("bert", &inputs, RunOptions::seeded(2))
        .expect("request");
    let out = graph.outputs[0];
    let err = served.primary().rel_l2_error(&reference[out.0]);
    println!("end-to-end rel L2 error (served vs reference): {err:.2e}");
    assert!(err < 5e-2, "served model must match reference");

    runtime.shutdown().expect("caches persist");
    println!("OK — compiled BERT serves concurrently and matches the reference.");
}
