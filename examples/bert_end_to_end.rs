//! End-to-end compilation of a BERT encoder through one `FusionEngine`
//! session: partition the graph into MBCI sub-graphs, tune them (in
//! parallel), delegate the rest to Relay, and verify that fused
//! execution matches pure reference evaluation.
//!
//! ```sh
//! cargo run --release --example bert_end_to_end
//! ```

use mcfuser::baselines::Relay;
use mcfuser::ir::{evaluate, NodeId, Op};
use mcfuser::prelude::*;
use mcfuser::sim::HostTensor;
use mcfuser::workloads::{bert_graph, BertConfig};

fn main() {
    // A 2-layer BERT-Small-style encoder at sequence 128 (kept small so
    // the functional verification runs in seconds).
    let cfg = BertConfig {
        layers: 2,
        hidden: 256,
        heads: 4,
        seq: 128,
        intermediate: 1024,
    };
    let graph = bert_graph("bert-mini", &cfg);
    let device = DeviceSpec::a100();
    println!(
        "model: {} ({} nodes, {:.2} GFLOP)",
        graph.name,
        graph.nodes.len(),
        graph.total_flops() / 1e9
    );

    // One session: MBCI partition + parallel chain tuning + Relay for
    // the rest. Identical layers share a single tuning via the cache.
    let engine = FusionEngine::builder(device)
        .fallback(Relay::new())
        .parallelism(0) // all cores
        .build();
    let model = engine.compile(&graph).expect("compilation succeeds");
    println!("fused chains      : {}", model.chains.len());
    for c in &model.chains {
        println!(
            "  {} -> {} ({:.2} us{})",
            c.chain.name,
            c.tuned.candidate.describe(&c.chain),
            c.tuned.profile.time * 1e6,
            if c.cache_hit { ", cached" } else { "" }
        );
    }
    println!("chain time        : {:.1} us", model.chain_time * 1e6);
    println!("total time        : {:.1} us", model.total_time * 1e6);
    println!(
        "virtual tuning    : {:.0} s ({})",
        model.tuning_seconds, model.fallback
    );

    // Functional verification: fused chains run on the simulator, the
    // rest on the CPU reference; the result must match pure reference
    // evaluation of the whole graph.
    let mut inputs: rustc_hash::FxHashMap<NodeId, HostTensor> = Default::default();
    for (i, node) in graph.nodes.iter().enumerate() {
        if matches!(node.op, Op::Input) {
            let len: u64 = node.shape.iter().product();
            inputs.insert(
                NodeId(i),
                HostTensor::from_vec(
                    &node.shape,
                    (0..len).map(|x| ((x % 31) as f32 - 15.0) / 31.0).collect(),
                ),
            );
        }
    }
    let fused = engine
        .execute(&graph, &model, &inputs, 7)
        .expect("fused execution");
    let reference = evaluate(&graph, &inputs, 7).expect("reference evaluation");
    let out = graph.outputs[0];
    let err = fused[out.0].rel_l2_error(&reference[out.0]);
    println!("\nend-to-end rel L2 error (fused vs reference): {err:.2e}");
    assert!(err < 5e-2, "fused model must match reference");
    println!("OK — fused BERT matches the reference model.");
}
