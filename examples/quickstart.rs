//! Quickstart: open a `FusionEngine` session, tune a fused kernel for a
//! memory-bound GEMM chain, and verify it computes the right answer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mcfuser::prelude::*;
use mcfuser::sim::execute;

fn main() {
    // The paper's G1 workload: C = A×B, E = C×D with skinny reductions —
    // each GEMM alone is memory bound, so fusing the chain pays off.
    let chain = ChainSpec::gemm_chain("G1", 1, 512, 256, 64, 64);
    let device = DeviceSpec::a100();

    println!("chain: {chain}");
    println!(
        "per-op arithmetic intensity: {:.1} / {:.1} FLOP/B (device ridge {:.0})",
        chain.op_intensity(0),
        chain.op_intensity(1),
        device.ridge_flops_per_byte(chain.dtype),
    );
    assert!(chain.is_memory_bound(&device), "G1 must classify as MBCI");

    // One session owns the whole pipeline: search-space generation ->
    // Rules 1-4 -> Algorithm 1, plus the tuning cache.
    let engine = FusionEngine::builder(device).build();
    let tuned = engine.tune(&chain).expect("tuning succeeds");
    println!("\nwinning schedule : {}", tuned.candidate.describe(&chain));
    println!("kernel time      : {:.2} us", tuned.profile.time * 1e6);
    println!("thread blocks    : {}", tuned.profile.blocks);
    println!("shared mem/block : {} KiB", tuned.kernel.smem_bytes / 1024);
    println!(
        "search-space     : {} -> {} candidates after pruning",
        tuned.prune_stats.original, tuned.prune_stats.after_rule4
    );
    println!(
        "tuning cost      : {:.0} virtual s, {} measurements, {} free estimates",
        tuned.tuning.virtual_seconds, tuned.tuning.measurements, tuned.tuning.estimates
    );

    // Asking the session again is a cache hit: same schedule, no new
    // measurements on the session clock.
    let again = engine.tune(&chain).expect("cache hit");
    assert_eq!(again.candidate, tuned.candidate);
    let stats = engine.stats();
    println!(
        "session          : {} tuned fresh, {} served from cache",
        stats.cache_misses, stats.cache_hits
    );

    // Verify the fused kernel against the CPU reference oracle.
    let inputs = chain.random_inputs(42);
    let mut storage = TensorStorage::for_program(&tuned.kernel.program);
    for (i, t) in inputs.iter().enumerate() {
        storage.tensors[i] = t.clone();
    }
    execute(&tuned.kernel.program, &mut storage).expect("kernel executes");
    let reference = chain.reference(&inputs);
    let err = storage.tensors.last().unwrap().rel_l2_error(&reference);
    println!("\nnumerics         : rel L2 error vs reference = {err:.2e}");
    assert!(err < 2e-2, "fused kernel must match the reference");
    println!("OK — the fused kernel is correct.");
}
