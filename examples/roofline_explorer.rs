//! Roofline explorer: classify an arbitrary GEMM chain as compute- or
//! memory-bound on both devices and show what MCFuser does with it.
//!
//! ```sh
//! cargo run --release --example roofline_explorer -- 512 256 64 64
//! #                                                   M   N   K  H
//! ```

use mcfuser::prelude::*;

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (m, n, k, h) = match args.as_slice() {
        [m, n, k, h, ..] => (*m, *n, *k, *h),
        _ => {
            eprintln!("usage: roofline_explorer M N K H  (defaulting to 512 256 64 64)");
            (512, 256, 64, 64)
        }
    };
    let chain = ChainSpec::gemm_chain("explore", 1, m, n, k, h);
    println!("chain: {chain}");
    println!(
        "fused arithmetic intensity: {:.1} FLOP/B (unfused ops: {:.1}, {:.1})\n",
        chain.operational_intensity(),
        chain.op_intensity(0),
        chain.op_intensity(1)
    );

    for device in [DeviceSpec::a100(), DeviceSpec::rtx3080()] {
        let ridge = device.ridge_flops_per_byte(chain.dtype);
        let mbci = chain.is_memory_bound(&device);
        println!("== {} (ridge {:.0} FLOP/B) ==", device.name, ridge);
        println!(
            "classification: {}",
            if mbci {
                "MBCI — every operator is memory bound; fusion pays"
            } else {
                "compute bound — fusion gains little; leave to per-op backends"
            }
        );
        // One engine session per device (engines are device-bound).
        let engine = FusionEngine::builder(device.clone()).build();
        match engine.tune(&chain) {
            Ok(t) => {
                println!(
                    "MCFuser: {} in {:.2} us ({} blocks, {} KiB smem, bound: {:?})",
                    t.candidate.describe(&chain),
                    t.profile.time * 1e6,
                    t.profile.blocks,
                    t.kernel.smem_bytes / 1024,
                    t.profile.bound,
                );
                println!(
                    "pruning: {} -> {} candidates; tuning {:.0} virtual s\n",
                    t.prune_stats.original, t.prune_stats.after_rule4, t.tuning.virtual_seconds
                );
            }
            Err(e) => println!("MCFuser: {e}\n"),
        }
    }
}
