//! The generalized partitioner at work: an arbitrary-length MLP chain
//! with mixed per-stage epilogues (bias, GELU, ReLU) and a causal
//! masked-attention module, both carved out of operator graphs and
//! fused into single kernels by one `FusionEngine` session.
//!
//! ```sh
//! cargo run --release --example deep_chain_fusion
//! ```

use mcfuser::baselines::Relay;
use mcfuser::ir::{causal_mask, evaluate, NodeId, Op};
use mcfuser::prelude::*;
use mcfuser::sim::HostTensor;
use mcfuser::workloads::{masked_attention_graph, mlp4_graph};

fn ramp_inputs(graph: &Graph) -> rustc_hash::FxHashMap<NodeId, HostTensor> {
    let mut m = rustc_hash::FxHashMap::default();
    for (i, node) in graph.nodes.iter().enumerate() {
        if matches!(node.op, Op::Input) {
            let len: u64 = node.shape.iter().product();
            m.insert(
                NodeId(i),
                HostTensor::from_vec(
                    &node.shape,
                    (0..len).map(|x| ((x % 23) as f32 - 11.0) / 23.0).collect(),
                ),
            );
        }
    }
    m
}

/// Freeze a compiled model and run one request through the plan.
fn run_once(
    model: &CompiledModel,
    graph: &Graph,
    inputs: &rustc_hash::FxHashMap<NodeId, HostTensor>,
    seed: u64,
) -> HostTensor {
    let plan = model.plan(graph).expect("plan freezes");
    plan.execute(
        &InputSet::from_node_values(inputs),
        RunOptions::seeded(seed),
    )
    .expect("runs")
    .primary()
    .clone()
}

fn main() {
    let engine = FusionEngine::builder(DeviceSpec::a100())
        .fallback(Relay::new())
        .build();

    // --- 1. A 4-GEMM MLP fuses into ONE kernel -------------------------
    let mlp = mlp4_graph();
    let model = engine.compile(&mlp).expect("mlp compiles");
    println!("== {} ==", mlp.name);
    for c in &model.chains {
        println!(
            "fused {} ops (epilogues {:?}, biases {:?})",
            c.chain.num_ops(),
            c.chain.epilogues,
            c.chain.biases
        );
        println!(
            "  schedule {} -> {:.2} us",
            c.tuned.candidate.describe(&c.chain),
            c.tuned.profile.time * 1e6
        );
    }
    assert_eq!(model.chains.len(), 1, "the whole MLP is one MBCI chain");
    assert!(model.rest_times.is_empty());

    let inputs = ramp_inputs(&mlp);
    let fused = run_once(&model, &mlp, &inputs, 1);
    let reference = evaluate(&mlp, &inputs, 1).expect("reference");
    let out = mlp.outputs[0];
    let err = fused.rel_l2_error(&reference[out.0]);
    println!("  rel L2 error vs reference: {err:.2e}");
    assert!(err < 5e-2);

    // --- 2. Causal masked attention ------------------------------------
    let (attn, mask_node) = masked_attention_graph(8, 256, 64);
    let model = engine.compile(&attn).expect("attention compiles");
    println!("\n== {} ==", attn.name);
    let fc = &model.chains[0];
    println!(
        "fused chain {} (epilogues {:?})",
        fc.chain, fc.chain.epilogues
    );
    let mut inputs = ramp_inputs(&attn);
    inputs.insert(mask_node, causal_mask(8, 256, 256));
    let fused = run_once(&model, &attn, &inputs, 2);
    let reference = evaluate(&attn, &inputs, 2).expect("reference");
    let out = attn.outputs[0];
    let err = fused.rel_l2_error(&reference[out.0]);
    println!("  rel L2 error vs reference (causal mask): {err:.2e}");
    assert!(err < 5e-2);

    println!("\nOK — deep chains and masked attention fuse end to end.");
}
