//! Fusing a BERT-Base self-attention module (the paper's S2 workload)
//! and racing every backend on it.
//!
//! ```sh
//! cargo run --release --example attention_fusion
//! ```

use mcfuser::baselines::{Ansor, Backend, Bolt, Chimera, FlashAttention, McFuserBackend, PyTorch};
use mcfuser::prelude::*;

fn main() {
    // S2: 12 heads, sequence 512, head dim 64 (Table III).
    let chain = ChainSpec::attention("S2", 12, 512, 512, 64, 64);
    let device = DeviceSpec::a100();
    println!("workload: {chain}");
    println!(
        "unfused pipelines move {:.1}x the compulsory traffic\n",
        1.0 + chain.unfused_extra_traffic_bytes() / chain.min_traffic_bytes()
    );

    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(PyTorch),
        Box::new(Ansor::with_trials(200)),
        Box::new(Bolt::new()),
        Box::new(FlashAttention),
        Box::new(Chimera),
        Box::new(McFuserBackend::new()),
    ];

    let mut baseline_time = None;
    println!(
        "{:<16} {:>10} {:>9} {:>8} {:>7}  note",
        "backend", "time", "speedup", "kernels", "fused"
    );
    for b in &backends {
        match b.run_chain(&chain, &device) {
            Ok(run) => {
                let base = *baseline_time.get_or_insert(run.time);
                println!(
                    "{:<16} {:>8.2}us {:>8.2}x {:>8} {:>7}  {}",
                    b.name(),
                    run.time * 1e6,
                    base / run.time,
                    run.kernels,
                    run.fused,
                    run.note
                );
            }
            Err(e) => println!("{:<16} {:>10}  ({e})", b.name(), "-"),
        }
    }

    // FlashAttention's rigid constraint: K must equal H.
    let mut odd = chain.clone();
    odd.dims = vec![64, 512, 96];
    let refusal = FlashAttention.run_chain(&odd, &device).unwrap_err();
    println!("\nFlashAttention on K=64,H=96: {refusal}");
    println!("MCFuser handles it fine (direct engine session this time):");
    let engine = FusionEngine::builder(device).build();
    let tuned = engine.tune(&odd).unwrap();
    println!(
        "  {:.2} us with schedule {}",
        tuned.profile.time * 1e6,
        tuned.candidate.describe(&odd)
    );
}
